//! Per-signal dynamic state: the "VALUE BASE" record of Fig 2-7.
//!
//! Each signal carries its waveform over the period, its separated skew
//! (§2.8), and the evaluation string being propagated through gating
//! levels (§2.6, the `EVAL STR PTR` field).

use scald_wave::{DelayRange, Skew, Time, WaveRef, Waveform};
use std::fmt;
use std::sync::Arc;

/// One evaluation directive letter (§2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Directive {
    /// `E` — evaluate the gate with no special action (the default).
    Evaluate,
    /// `W` — zero the wire going into the gate.
    ZeroWire,
    /// `Z` — zero the gate delay and the wire going into it (the clock
    /// timing refers to the gate *output*).
    ZeroGateAndWire,
    /// `A` — check that the other inputs of the gate are not changing
    /// while this input is asserted; assume the other inputs enable the
    /// gate when computing the output.
    AssertedCheck,
    /// `H` — the combined effect of `Z` and `A`.
    HoldCheck,
}

impl Directive {
    /// Parses a single directive letter.
    #[must_use]
    pub fn from_letter(c: char) -> Option<Directive> {
        match c {
            'E' => Some(Directive::Evaluate),
            'W' => Some(Directive::ZeroWire),
            'Z' => Some(Directive::ZeroGateAndWire),
            'A' => Some(Directive::AssertedCheck),
            'H' => Some(Directive::HoldCheck),
            _ => None,
        }
    }

    /// Whether this directive zeroes the wire delay into the gate.
    #[must_use]
    pub const fn zeroes_wire(self) -> bool {
        matches!(
            self,
            Directive::ZeroWire | Directive::ZeroGateAndWire | Directive::HoldCheck
        )
    }

    /// Whether this directive zeroes the gate's own delay.
    #[must_use]
    pub const fn zeroes_gate(self) -> bool {
        matches!(self, Directive::ZeroGateAndWire | Directive::HoldCheck)
    }

    /// Whether this directive requests the asserted-stability check and
    /// the assume-enabling treatment of the other inputs.
    #[must_use]
    pub const fn checks_assertion(self) -> bool {
        matches!(self, Directive::AssertedCheck | Directive::HoldCheck)
    }
}

/// A directive string positioned at the next letter to consume — the
/// thesis' evaluation-string pointer (§2.8).
///
/// The string `"HZZW"` controls four levels of gating: the first gate
/// consumes the `H`, passes `"ZZW"` along with its output value, and so on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalStr {
    text: Arc<str>,
    pos: usize,
}

impl EvalStr {
    /// Creates an evaluation string starting at its first letter.
    ///
    /// The caller must have validated the letters (the netlist builder
    /// rejects anything outside `E W Z A H`).
    #[must_use]
    pub fn new(text: impl Into<Arc<str>>) -> EvalStr {
        EvalStr {
            text: text.into(),
            pos: 0,
        }
    }

    /// The directive for the current gating level, if any remains.
    #[must_use]
    pub fn head(&self) -> Option<Directive> {
        self.text[self.pos..]
            .chars()
            .next()
            .and_then(Directive::from_letter)
    }

    /// The remainder of the string for the next gating level; `None` when
    /// this was the last letter.
    #[must_use]
    pub fn tail(&self) -> Option<EvalStr> {
        let next = self.pos + 1;
        if next < self.text.len() {
            Some(EvalStr {
                text: Arc::clone(&self.text),
                pos: next,
            })
        } else {
            None
        }
    }

    /// The remaining letters, e.g. `"ZW"`.
    #[must_use]
    pub fn remaining(&self) -> &str {
        &self.text[self.pos..]
    }
}

impl fmt::Display for EvalStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.remaining())
    }
}

/// The dynamic state of one signal during verification: waveform, separate
/// skew, and the propagating evaluation string (Fig 2-7).
///
/// The waveform is an interned handle ([`WaveRef`]): clones are
/// reference-count bumps and equality (hence the engine's commit-time
/// convergence check) is an id compare.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalState {
    /// The signal's value over the period (interned, shared).
    pub wave: WaveRef,
    /// Separated transition-time uncertainty (§2.8).
    pub skew: Skew,
    /// Evaluation string travelling with the value (§2.6).
    pub eval: Option<EvalStr>,
}

impl SignalState {
    /// A state with no skew and no evaluation string.
    #[must_use]
    pub fn new(wave: Waveform) -> SignalState {
        SignalState {
            wave: wave.into(),
            skew: Skew::ZERO,
            eval: None,
        }
    }

    /// The worst-case waveform with the separated skew folded back into
    /// the value list (Fig 2-9). Checkers and multi-input combines see
    /// this view.
    ///
    /// With zero skew the fold is the identity, so the interned base
    /// handle is returned directly — no deep clone, no re-intern.
    #[must_use]
    pub fn resolved(&self) -> WaveRef {
        if self.skew.is_zero() {
            self.wave.clone()
        } else {
            self.wave.with_skew_applied(self.skew).into()
        }
    }

    /// The state after travelling through a min/max delay while remaining
    /// a lone delayed signal: the waveform shifts by the minimum and the
    /// delay spread accumulates into the skew, preserving pulse widths
    /// (§2.8, Fig 2-8).
    #[must_use]
    pub fn delayed(&self, delay: DelayRange) -> SignalState {
        let wave = if delay.min == Time::ZERO {
            self.wave.clone()
        } else {
            self.wave.delayed(delay.min).into()
        };
        SignalState {
            wave,
            skew: self.skew.after_delay(delay),
            eval: self.eval.clone(),
        }
    }

    /// The fully resolved waveform after a delay — for use when the signal
    /// is about to be combined with others and the skew can no longer be
    /// kept separate (§2.8).
    #[must_use]
    pub fn resolved_after(&self, delay: DelayRange) -> WaveRef {
        self.delayed(delay).resolved()
    }

    /// Number of value records (run-length nodes) plus the base record, as
    /// Table 3-3 counts them.
    #[must_use]
    pub fn value_records(&self) -> usize {
        self.wave.value_record_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value;
    use scald_wave::Time;

    #[test]
    fn directive_letters() {
        assert_eq!(Directive::from_letter('E'), Some(Directive::Evaluate));
        assert_eq!(Directive::from_letter('H'), Some(Directive::HoldCheck));
        assert_eq!(Directive::from_letter('X'), None);
        assert!(Directive::HoldCheck.zeroes_wire());
        assert!(Directive::HoldCheck.zeroes_gate());
        assert!(Directive::HoldCheck.checks_assertion());
        assert!(Directive::ZeroWire.zeroes_wire());
        assert!(!Directive::ZeroWire.zeroes_gate());
        assert!(!Directive::Evaluate.zeroes_wire());
        assert!(Directive::AssertedCheck.checks_assertion());
        assert!(!Directive::AssertedCheck.zeroes_gate());
    }

    #[test]
    fn eval_string_consumes_level_by_level() {
        let s = EvalStr::new("HZZW");
        assert_eq!(s.head(), Some(Directive::HoldCheck));
        let s2 = s.tail().unwrap();
        assert_eq!(s2.head(), Some(Directive::ZeroGateAndWire));
        assert_eq!(s2.remaining(), "ZZW");
        let s3 = s2.tail().unwrap().tail().unwrap();
        assert_eq!(s3.head(), Some(Directive::ZeroWire));
        assert!(s3.tail().is_none());
        assert_eq!(s3.to_string(), "&W");
    }

    /// Regression: with zero skew, `resolved` must hand back the interned
    /// base handle itself (same store, same id) instead of re-running the
    /// identity skew fold and re-interning — and a zero-spread,
    /// zero-minimum delay must keep the same handle through
    /// `delayed`/`resolved_after` too.
    #[test]
    fn zero_skew_resolution_returns_the_base_handle() {
        let period = Time::from_ns(50.0);
        let wave = Waveform::from_intervals(
            period,
            Value::Zero,
            [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
        );
        let st = SignalState::new(wave.clone());
        assert!(st.skew.is_zero());
        let resolved = st.resolved();
        assert_eq!(resolved.store_tag(), st.wave.store_tag());
        assert_eq!(resolved.id(), st.wave.id(), "no re-fold on zero skew");
        assert_eq!(*resolved, wave);

        let after = st.resolved_after(DelayRange::ZERO);
        assert_eq!(after.id(), st.wave.id(), "zero delay keeps the handle");

        // Non-zero skew still folds.
        let skewed = SignalState {
            skew: Skew::from_ns(0.0, 5.0),
            ..st.clone()
        };
        assert_ne!(skewed.resolved().id(), st.wave.id());
        assert_eq!(
            *skewed.resolved(),
            wave.with_skew_applied(Skew::from_ns(0.0, 5.0))
        );
    }

    #[test]
    fn delayed_keeps_pulse_width_in_wave() {
        let period = Time::from_ns(50.0);
        let wave = Waveform::from_intervals(
            period,
            Value::Zero,
            [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
        );
        let st = SignalState::new(wave).delayed(DelayRange::from_ns(5.0, 10.0));
        // Wave shifted by min only; spread lives in the skew.
        assert_eq!(st.wave.value_at(Time::from_ns(16.0)), Value::One);
        assert_eq!(st.skew, Skew::from_ns(0.0, 5.0));
        // Resolution folds it into R/F windows.
        let folded = st.resolved();
        assert_eq!(folded.value_at(Time::from_ns(16.0)), Value::Rise);
        assert_eq!(folded.value_at(Time::from_ns(21.0)), Value::One);
    }
}
