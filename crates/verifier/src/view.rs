//! Read and write access to signal states, abstracted so the evaluators,
//! checkers and the wave-based settle loop work both on the engine's flat
//! state vectors and on a per-case *cone overlay* (§2.7): the settled base
//! state plus only the signals a case's overrides actually dirtied. The
//! overlay is what lets case workers run concurrently without cloning the
//! whole design state — each worker copies just the slice of
//! [`SignalState`]s in its case's fan-out cone.
//!
//! The wave engine reuses the same machinery in the other direction:
//! during a wave's evaluation phase many worker threads read one frozen
//! state through a shared [`StateView`]; the single commit phase then
//! writes through [`StateStore`]. Both the flat `[SignalState]` backing
//! of the base settle and the [`ConeState`] overlay of a case settle
//! implement both traits, so one settle loop serves every path.

use std::collections::HashMap;

use crate::state::SignalState;

/// Read-only view of all signal states, indexed by `SignalId::index()`.
pub(crate) trait StateView: Sync {
    /// The state of signal `idx`.
    fn state_at(&self, idx: usize) -> &SignalState;
}

impl StateView for [SignalState] {
    fn state_at(&self, idx: usize) -> &SignalState {
        &self[idx]
    }
}

/// A writable [`StateView`]: what the wave engine's commit phase needs.
/// Writes never happen concurrently with reads — the engine evaluates a
/// whole wave against a frozen view, then commits on one thread.
pub(crate) trait StateStore: StateView {
    /// Replaces the state of signal `idx`.
    fn set_state(&mut self, idx: usize, state: SignalState);
}

impl StateStore for [SignalState] {
    fn set_state(&mut self, idx: usize, state: SignalState) {
        self[idx] = state;
    }
}

/// A copy-on-write overlay over a settled base state: reads fall through
/// to the base unless the signal was re-evaluated under this case's
/// overrides. Writes touch only the overlay, so concurrent case workers
/// share one immutable base.
#[derive(Debug)]
pub(crate) struct ConeState<'a> {
    base: &'a [SignalState],
    local: HashMap<usize, SignalState>,
}

impl<'a> ConeState<'a> {
    pub(crate) fn new(base: &'a [SignalState]) -> ConeState<'a> {
        ConeState {
            base,
            local: HashMap::new(),
        }
    }

    /// Replaces the state of signal `idx` in the overlay.
    pub(crate) fn set(&mut self, idx: usize, state: SignalState) {
        self.local.insert(idx, state);
    }

    /// The dirtied slice: every (index, state) this case re-computed.
    pub(crate) fn into_overlay(self) -> HashMap<usize, SignalState> {
        self.local
    }
}

impl StateView for ConeState<'_> {
    fn state_at(&self, idx: usize) -> &SignalState {
        self.local.get(&idx).unwrap_or(&self.base[idx])
    }
}

impl StateStore for ConeState<'_> {
    fn set_state(&mut self, idx: usize, state: SignalState) {
        self.set(idx, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value;
    use scald_wave::{Time, Waveform};

    fn st(v: Value) -> SignalState {
        SignalState::new(Waveform::constant(Time::from_ps(50_000), v))
    }

    #[test]
    fn overlay_shadows_base() {
        let base = vec![st(Value::Zero), st(Value::One)];
        let mut cone = ConeState::new(&base);
        assert_eq!(cone.state_at(0), &base[0]);
        cone.set(0, st(Value::Stable));
        assert_eq!(cone.state_at(0), &st(Value::Stable));
        assert_eq!(cone.state_at(1), &base[1]);
        let overlay = cone.into_overlay();
        assert_eq!(overlay.len(), 1);
        assert_eq!(overlay[&0], st(Value::Stable));
    }

    #[test]
    fn store_writes_through_both_backends() {
        let mut flat = vec![st(Value::Zero)];
        flat.as_mut_slice().set_state(0, st(Value::One));
        assert_eq!(flat[0], st(Value::One));

        let base = vec![st(Value::Zero)];
        let mut cone = ConeState::new(&base);
        cone.set_state(0, st(Value::One));
        assert_eq!(cone.state_at(0), &st(Value::One));
        assert_eq!(base[0], st(Value::Zero), "base untouched");
    }
}
