//! Read and write access to signal states, abstracted so the evaluators,
//! checkers and the wave-based settle loop work both on the engine's flat
//! state arrays and on a per-case *cone overlay* (§2.7): the settled base
//! state plus only the signals a case's overrides actually dirtied. The
//! overlay is what lets case workers run concurrently without cloning the
//! whole design state — each worker copies just the slice of
//! [`SignalState`]s in its case's fan-out cone.
//!
//! The engine's own backing is [`SoaState`], a struct-of-arrays layout:
//! wave handles, skews and eval strings live in three parallel arrays
//! instead of one `Vec<SignalState>` of padded records. The hot loops
//! (cache keying, commit compares, storage accounting) touch mostly the
//! wave-handle column, so the narrow arrays keep them in cache at
//! 10^5–10^6 signals. Reads hand out a borrowed [`StateRef`]; an owned
//! [`SignalState`] is materialized only where a value actually travels
//! (into an evaluator's pin prep or an overlay).
//!
//! The wave engine reuses the same machinery in the other direction:
//! during a wave's evaluation phase many worker threads read one frozen
//! state through a shared [`StateView`]; the single commit phase then
//! writes through [`StateStore`]. Both the [`SoaState`] backing of the
//! base settle and the [`ConeState`] overlay of a case settle implement
//! both traits, so one settle loop serves every path.

use std::collections::{HashMap, HashSet};

use scald_wave::{Skew, WaveRef};

use crate::state::{EvalStr, SignalState};

/// A borrowed view of one signal's state: the three columns of
/// [`SoaState`] re-associated, without materializing a [`SignalState`].
/// Mirrors the read-only surface of [`SignalState`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateRef<'a> {
    /// The signal's interned waveform handle.
    pub wave: &'a WaveRef,
    /// Separated transition-time uncertainty (§2.8).
    pub skew: Skew,
    /// Evaluation string travelling with the value (§2.6).
    pub eval: &'a Option<EvalStr>,
}

impl StateRef<'_> {
    /// Materializes an owned [`SignalState`] (wave clone is a
    /// reference-count bump).
    pub(crate) fn to_state(self) -> SignalState {
        SignalState {
            wave: self.wave.clone(),
            skew: self.skew,
            eval: self.eval.clone(),
        }
    }

    /// The worst-case waveform with the separated skew folded back in —
    /// see [`SignalState::resolved`].
    pub(crate) fn resolved(self) -> WaveRef {
        if self.skew.is_zero() {
            self.wave.clone()
        } else {
            self.wave.with_skew_applied(self.skew).into()
        }
    }

    /// Value-record count as Table 3-3 counts them — see
    /// [`SignalState::value_records`].
    pub(crate) fn value_records(self) -> usize {
        self.wave.value_record_count()
    }
}

impl<'a> From<&'a SignalState> for StateRef<'a> {
    fn from(s: &'a SignalState) -> StateRef<'a> {
        StateRef {
            wave: &s.wave,
            skew: s.skew,
            eval: &s.eval,
        }
    }
}

/// Field-wise equality with an owned state — the commit phase's
/// convergence check. Matches `SignalState`'s derived `PartialEq`
/// (interned handles make the wave compare an id compare).
impl PartialEq<SignalState> for StateRef<'_> {
    fn eq(&self, other: &SignalState) -> bool {
        *self.wave == other.wave && self.skew == other.skew && *self.eval == other.eval
    }
}

/// Struct-of-arrays signal state: the engine's backing store. One entry
/// per signal, indexed by `SignalId::index()`; the columns are kept in
/// lock-step by construction (only [`push`](Self::push) and
/// [`set`](Self::set) write them).
#[derive(Debug, Clone, Default)]
pub(crate) struct SoaState {
    waves: Vec<WaveRef>,
    skews: Vec<Skew>,
    evals: Vec<Option<EvalStr>>,
}

impl SoaState {
    pub(crate) fn with_capacity(n: usize) -> SoaState {
        SoaState {
            waves: Vec::with_capacity(n),
            skews: Vec::with_capacity(n),
            evals: Vec::with_capacity(n),
        }
    }

    /// Appends one signal's state.
    pub(crate) fn push(&mut self, state: SignalState) {
        self.waves.push(state.wave);
        self.skews.push(state.skew);
        self.evals.push(state.eval);
    }

    /// Borrowed view of signal `idx`.
    pub(crate) fn get(&self, idx: usize) -> StateRef<'_> {
        StateRef {
            wave: &self.waves[idx],
            skew: self.skews[idx],
            eval: &self.evals[idx],
        }
    }

    /// Owned clone of signal `idx`'s state.
    pub(crate) fn state(&self, idx: usize) -> SignalState {
        self.get(idx).to_state()
    }

    /// Replaces signal `idx`'s state across all three columns.
    pub(crate) fn set(&mut self, idx: usize, state: SignalState) {
        self.waves[idx] = state.wave;
        self.skews[idx] = state.skew;
        self.evals[idx] = state.eval;
    }
}

impl FromIterator<SignalState> for SoaState {
    fn from_iter<I: IntoIterator<Item = SignalState>>(iter: I) -> SoaState {
        let iter = iter.into_iter();
        let mut soa = SoaState::with_capacity(iter.size_hint().0);
        for st in iter {
            soa.push(st);
        }
        soa
    }
}

/// Read-only view of all signal states, indexed by `SignalId::index()`.
pub(crate) trait StateView: Sync {
    /// The state of signal `idx`.
    fn state_at(&self, idx: usize) -> StateRef<'_>;
}

impl StateView for SoaState {
    fn state_at(&self, idx: usize) -> StateRef<'_> {
        self.get(idx)
    }
}

impl StateView for [SignalState] {
    fn state_at(&self, idx: usize) -> StateRef<'_> {
        let s = &self[idx];
        StateRef {
            wave: &s.wave,
            skew: s.skew,
            eval: &s.eval,
        }
    }
}

/// A writable [`StateView`]: what the wave engine's commit phase needs.
/// Writes never happen concurrently with reads — the engine evaluates a
/// whole wave against a frozen view, then commits on one thread.
pub(crate) trait StateStore: StateView {
    /// Replaces the state of signal `idx`.
    fn set_state(&mut self, idx: usize, state: SignalState);
}

impl StateStore for SoaState {
    fn set_state(&mut self, idx: usize, state: SignalState) {
        self.set(idx, state);
    }
}

impl StateStore for [SignalState] {
    fn set_state(&mut self, idx: usize, state: SignalState) {
        self[idx] = state;
    }
}

/// A copy-on-write overlay over a settled base state: reads fall through
/// to the base unless the signal was re-evaluated under this case's
/// overrides. Writes touch only the overlay, so concurrent case workers
/// share one immutable base.
#[derive(Debug)]
pub(crate) struct ConeState<'a> {
    base: &'a SoaState,
    local: HashMap<usize, SignalState>,
}

impl<'a> ConeState<'a> {
    pub(crate) fn new(base: &'a SoaState) -> ConeState<'a> {
        ConeState {
            base,
            local: HashMap::new(),
        }
    }

    /// Replaces the state of signal `idx` in the overlay.
    pub(crate) fn set(&mut self, idx: usize, state: SignalState) {
        self.local.insert(idx, state);
    }

    /// Forks the overlay: the child shares the same immutable base and
    /// starts from a copy of this overlay's dirtied signals. Used by the
    /// case tree (§2.7 at scale) — each internal node settles its shared
    /// prefix once, then every descendant leaf forks the node's overlay
    /// instead of re-settling the prefix cone.
    pub(crate) fn fork(&self) -> ConeState<'a> {
        ConeState {
            base: self.base,
            local: self.local.clone(),
        }
    }

    /// Signal indices whose state differs from `parent` — the dirty cone
    /// of this overlay relative to the state it forked from. Complete
    /// because a fork's `local` map only ever grows: any signal absent
    /// from `local` falls through to the same base entry on both sides.
    /// Entries the settle re-computed to the parent's value drop out via
    /// the interned-handle compare.
    pub(crate) fn dirty_vs<S: StateView + ?Sized>(&self, parent: &S) -> HashSet<usize> {
        self.local
            .iter()
            .filter(|&(&idx, st)| parent.state_at(idx) != *st)
            .map(|(&idx, _)| idx)
            .collect()
    }

    /// Total value-record count (Table 3-3) computed as a delta against a
    /// parent state whose total is already known: `parent_total` plus,
    /// per locally-dirtied signal, this overlay's records minus the
    /// parent's. Exact, because signals outside `local` are shared with
    /// the parent and equal entries contribute zero. Returns
    /// `(total, examined)` where `examined` counts the signals actually
    /// measured (the overlay size) — versus a full pass over every
    /// signal.
    pub(crate) fn value_records_vs<S: StateView + ?Sized>(
        &self,
        parent: &S,
        parent_total: usize,
    ) -> (usize, u64) {
        let mut total = parent_total as i64;
        for (&idx, st) in &self.local {
            total += st.value_records() as i64 - parent.state_at(idx).value_records() as i64;
        }
        (total as usize, self.local.len() as u64)
    }

    /// The dirtied slice: every (index, state) this case re-computed,
    /// sorted by index so overlay order never inherits `HashMap`
    /// iteration order (the byte-identical-reports guarantee).
    pub(crate) fn into_overlay(self) -> Vec<(usize, SignalState)> {
        let mut overlay: Vec<(usize, SignalState)> = self.local.into_iter().collect();
        overlay.sort_unstable_by_key(|&(idx, _)| idx);
        overlay
    }
}

impl StateView for ConeState<'_> {
    fn state_at(&self, idx: usize) -> StateRef<'_> {
        match self.local.get(&idx) {
            Some(s) => StateRef {
                wave: &s.wave,
                skew: s.skew,
                eval: &s.eval,
            },
            None => self.base.get(idx),
        }
    }
}

impl StateStore for ConeState<'_> {
    fn set_state(&mut self, idx: usize, state: SignalState) {
        self.set(idx, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value;
    use scald_wave::{Time, Waveform};

    fn st(v: Value) -> SignalState {
        SignalState::new(Waveform::constant(Time::from_ps(50_000), v))
    }

    #[test]
    fn soa_round_trips_states() {
        let states = [st(Value::Zero), st(Value::One)];
        let soa: SoaState = states.iter().cloned().collect();
        assert_eq!(soa.state(0), states[0]);
        assert_eq!(soa.state(1), states[1]);
        assert!(soa.state_at(0) == states[0]);
    }

    #[test]
    fn overlay_shadows_base() {
        let base: SoaState = [st(Value::Zero), st(Value::One)].into_iter().collect();
        let mut cone = ConeState::new(&base);
        assert!(cone.state_at(0) == base.state(0));
        cone.set(0, st(Value::Stable));
        assert!(cone.state_at(0) == st(Value::Stable));
        assert!(cone.state_at(1) == base.state(1));
        let overlay = cone.into_overlay();
        assert_eq!(overlay.len(), 1);
        assert_eq!(overlay[0], (0, st(Value::Stable)));
    }

    #[test]
    fn store_writes_through_both_backends() {
        let mut flat: SoaState = [st(Value::Zero)].into_iter().collect();
        flat.set_state(0, st(Value::One));
        assert_eq!(flat.state(0), st(Value::One));

        let base: SoaState = [st(Value::Zero)].into_iter().collect();
        let mut cone = ConeState::new(&base);
        cone.set_state(0, st(Value::One));
        assert!(cone.state_at(0) == st(Value::One));
        assert_eq!(base.state(0), st(Value::Zero), "base untouched");
    }
}
