//! Cross-wave, cross-case, cross-session memoization of primitive
//! evaluations.
//!
//! [`evaluate`](crate::eval) is a pure function of a primitive's static
//! description (kind, delays, per-connection inversion/directive/wire
//! delay, and the clock period) and the dynamic states of its input
//! signals. With waveforms hash-consed ([`scald_wave::WaveStore`]), a
//! dynamic input state is fully captured by the compact triple *(interned
//! wave handle, skew, remaining eval string)* — so a small key identifies
//! an evaluation exactly and the outcome can be served from a table
//! instead of re-running the kernels.
//!
//! Invalidation is by construction: everything `evaluate` reads is in the
//! key. The static half is rendered once per primitive into a
//! *descriptor* string and interned to a `u32` signature, so netlist
//! edits between `scald-incr` re-verifications produce new signatures for
//! changed primitives and identical ones for untouched primitives —
//! stale entries are unreachable, not purged.
//!
//! The table is sharded like the wave store: hits take a shard read-lock,
//! misses insert under the shard write-lock, so the wave engine's
//! evaluation workers share one cache without serializing.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use scald_netlist::{Netlist, Primitive};
use scald_wave::{DelayCorner, Skew, WaveId};

use crate::eval::EvalOutcome;
use crate::view::StateView;

const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// The dynamic half of the key: one input signal's state, compressed to
/// the interned wave handle plus the fields `evaluate` actually reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct InputKey {
    /// Tag of the store that issued the handle (ids are only comparable
    /// within one store).
    store: u32,
    wave: WaveId,
    skew: Skew,
    /// Remaining letters of the propagating evaluation string, if any.
    eval: Option<Box<str>>,
}

/// Full cache key: the primitive's interned descriptor signature plus
/// the dynamic state of each input, in connection order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct EvalKey {
    sig: u32,
    /// The delay corner in force — corner sweeps collapse every
    /// [`DelayRange`](scald_wave::DelayRange) the kernels read, so
    /// outcomes from different corners must never alias.
    corner: DelayCorner,
    inputs: Vec<InputKey>,
}

/// Hit/miss/size counters for an [`EvalCache`], surfaced through the
/// report's engine-stats listing and the `cache_stats` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Lookups served from the table.
    pub hits: u64,
    /// Lookups that fell through to the evaluation kernels.
    pub misses: u64,
    /// Distinct evaluation outcomes currently stored.
    pub entries: usize,
}

impl EvalCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters accumulated since `earlier` (a prior snapshot of the
    /// same cache): per-request attribution on a shared, long-lived
    /// table, where the cumulative numbers span every client.
    /// `entries` stays absolute — the table only grows.
    #[must_use]
    pub fn since(&self, earlier: &EvalCacheStats) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// A sharded memo table of primitive-evaluation outcomes.
///
/// One cache is created per [`Verifier`](crate::Verifier) unless a shared
/// one is injected ([`VerifierBuilder::shared_eval_cache`]); `scald-incr`
/// sessions inject one cache across every re-verification so unchanged
/// regions of an edited design replay from the table.
///
/// [`VerifierBuilder::shared_eval_cache`]: crate::VerifierBuilder::shared_eval_cache
pub struct EvalCache {
    /// Descriptor-string → signature interner. Identical primitive
    /// descriptions (across netlists, sessions, rebuilds) map to the same
    /// signature, which is what makes warm-session reuse work.
    sigs: Mutex<HashMap<String, u32>>,
    hasher: RandomState,
    shards: [RwLock<HashMap<EvalKey, EvalOutcome>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> EvalCache {
        EvalCache {
            sigs: Mutex::new(HashMap::new()),
            hasher: RandomState::new(),
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Interns the static descriptor of `prim`, returning its signature —
    /// or `None` for checker kinds, which compute nothing during the
    /// fixed point and are not worth a table slot.
    pub(crate) fn sig_for_prim(&self, netlist: &Netlist, prim: &Primitive) -> Option<u32> {
        if prim.kind.is_checker() {
            return None;
        }
        let desc = prim_descriptor(netlist, prim);
        let mut sigs = self.sigs.lock().expect("eval cache poisoned");
        let next = sigs.len() as u32;
        Some(*sigs.entry(desc).or_insert(next))
    }

    /// Builds the full key for evaluating `prim` (signature `sig`)
    /// against the input states visible in `states`.
    pub(crate) fn key_for<S: StateView + ?Sized>(
        sig: u32,
        prim: &Primitive,
        states: &S,
        corner: DelayCorner,
    ) -> EvalKey {
        let inputs = prim
            .inputs
            .iter()
            .map(|conn| {
                let src = states.state_at(conn.signal.index());
                InputKey {
                    store: src.wave.store_tag(),
                    wave: src.wave.id(),
                    skew: src.skew,
                    eval: src.eval.as_ref().map(|e| e.remaining().into()),
                }
            })
            .collect();
        EvalKey {
            sig,
            corner,
            inputs,
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: &EvalKey) -> Option<EvalOutcome> {
        let shard = self.shard_of(key);
        let found = self.shards[shard]
            .read()
            .expect("eval cache poisoned")
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores the outcome for `key`. Racing inserts of the same key keep
    /// the first value; outcomes for equal keys are equal, so which copy
    /// wins is unobservable.
    pub(crate) fn insert(&self, key: EvalKey, outcome: &EvalOutcome) {
        let shard = self.shard_of(&key);
        self.shards[shard]
            .write()
            .expect("eval cache poisoned")
            .entry(key)
            .or_insert_with(|| outcome.clone());
    }

    fn shard_of(&self, key: &EvalKey) -> usize {
        (self.hasher.hash_one(key) as usize) & (SHARDS - 1)
    }

    /// Distinct outcomes currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("eval cache poisoned").len())
            .sum()
    }

    /// `true` if no outcome has been stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/size counters.
    #[must_use]
    pub fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new()
    }
}

impl fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("EvalCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// Renders everything `evaluate` reads from the netlist for one
/// primitive: period, kind (with parameters), delays, and each
/// connection's inversion, directive and *resolved* wire delay. Two
/// primitives with equal descriptors evaluate identically on equal
/// inputs — the invalidation-by-construction invariant.
fn prim_descriptor(netlist: &Netlist, prim: &Primitive) -> String {
    let mut d = String::with_capacity(96);
    let _ = write!(
        d,
        "{:?}|{:?}|{:?}|{:?}",
        netlist.config().timing.period,
        prim.kind,
        prim.delay,
        prim.edge_delays,
    );
    for conn in &prim.inputs {
        let _ = write!(
            d,
            "|{}:{:?}:{:?}",
            conn.invert,
            conn.directive,
            netlist.wire_delay(conn),
        );
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value;
    use scald_netlist::{Config, NetlistBuilder, PrimKind};
    use scald_wave::{DelayRange, Time, Waveform};

    use crate::state::SignalState;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let q = b.signal("Q").unwrap();
        let r = b.signal("R").unwrap();
        b.prim(
            "BUF",
            PrimKind::Buf,
            DelayRange::from_ns(1.0, 2.0),
            vec![a.into()],
            Some(q),
        );
        b.prim(
            "INV",
            PrimKind::Not,
            DelayRange::from_ns(1.0, 2.0),
            vec![a.into()],
            Some(r),
        );
        b.finish().unwrap()
    }

    #[test]
    fn signatures_distinguish_prims_and_dedupe_equal_descriptors() {
        let n = tiny();
        let cache = EvalCache::new();
        let buf = cache.sig_for_prim(&n, &n.prims()[0]).unwrap();
        let inv = cache.sig_for_prim(&n, &n.prims()[1]).unwrap();
        assert_ne!(buf, inv, "different kinds, different signatures");
        // Re-interning (as a rebuilt session would) is stable.
        assert_eq!(cache.sig_for_prim(&n, &n.prims()[0]), Some(buf));
        assert_eq!(cache.sig_for_prim(&n, &n.prims()[1]), Some(inv));
    }

    #[test]
    fn lookup_hits_only_on_matching_key_and_counts() {
        let n = tiny();
        let cache = EvalCache::new();
        let prim = &n.prims()[0];
        let sig = cache.sig_for_prim(&n, prim).unwrap();
        let period = n.config().timing.period;
        let states = vec![
            SignalState::new(Waveform::constant(period, Value::Zero)),
            SignalState::new(Waveform::constant(period, Value::Unknown)),
            SignalState::new(Waveform::constant(period, Value::Unknown)),
        ];
        let key = EvalCache::key_for(sig, prim, states.as_slice(), DelayCorner::Worst);
        assert!(cache.lookup(&key).is_none());
        let outcome = crate::eval::evaluate(&n, prim, states.as_slice(), DelayCorner::Worst);
        cache.insert(key.clone(), &outcome);
        let back = cache.lookup(&key).expect("second lookup hits");
        assert_eq!(format!("{back:?}"), format!("{outcome:?}"));

        // A different input wave is a different key.
        let other = vec![
            SignalState::new(Waveform::constant(period, Value::One)),
            states[1].clone(),
        ];
        let miss = EvalCache::key_for(sig, prim, other.as_slice(), DelayCorner::Worst);
        assert_ne!(key, miss);
        assert!(cache.lookup(&miss).is_none());

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn checker_prims_are_not_cached() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let d = b.signal("D").unwrap();
        let c = b.signal("C .P0-2").unwrap();
        b.prim(
            "CHK",
            PrimKind::SetupHold {
                setup: Time::from_ns(5.0),
                hold: Time::from_ns(1.0),
            },
            DelayRange::ZERO,
            vec![d.into(), c.into()],
            None,
        );
        let n = b.finish().unwrap();
        let cache = EvalCache::new();
        assert_eq!(cache.sig_for_prim(&n, &n.prims()[0]), None);
        assert!(cache.is_empty());
    }
}
