//! The event-driven verification engine (§2.9).
//!
//! The engine initializes every signal from its assertion (or to unknown /
//! assumed-stable), then repeatedly re-evaluates primitives whose inputs
//! changed until all signals settle. Each output change is an *event*; the
//! fan-out index supplies the primitives to re-evaluate. After the fixed
//! point, the checker pass examines every constraint. Case analysis (§2.7)
//! re-uses the settled state: switching cases dirties only the overridden
//! signals' cones.
//!
//! Settling is *level-synchronized*: the worklist is drained into a
//! deduplicated wave, every primitive of the wave is evaluated against
//! the frozen pre-wave state (concurrently when the jobs budget allows),
//! and the results are committed on one thread in primitive-id order.
//! Because each wave reads only state committed by previous waves,
//! in-wave evaluation order is unobservable — waveforms, violation
//! lists, report JSON and trace streams are byte-identical for every
//! worker count (DESIGN.md § "The wave engine";
//! `tests/parallel_settle.rs` proves it over seeded designs).

use scald_logic::Value;
use scald_netlist::{Netlist, PrimId, SignalId};
use scald_trace::{TraceEvent, TraceSink};
use scald_wave::{WaveRef, Waveform};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cache::EvalCache;
use crate::checkers::{run_all_checks, slack_report, CheckMargin};
use crate::eval::{evaluate, EvalOutcome};
use crate::report::{CaseResult, EngineStats, Report, Violation};
use crate::state::SignalState;
use crate::storage::StorageReport;
use crate::view::{ConeState, SoaState, StateRef, StateStore, StateView};

/// One case for case analysis (§2.7.1): a set of `signal = 0/1`
/// assignments applied wherever the circuit would set the signal stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Case {
    assigns: Vec<(String, bool)>,
}

impl Case {
    /// An empty case (no overrides) — what a plain run uses.
    #[must_use]
    pub fn new() -> Case {
        Case::default()
    }

    /// Adds a `signal = value` assignment, e.g.
    /// `Case::new().assign("CONTROL SIGNAL", true)`.
    #[must_use]
    pub fn assign(mut self, signal: impl Into<String>, value: bool) -> Case {
        self.assigns.push((signal.into(), value));
        self
    }

    /// The assignments in this case.
    #[must_use]
    pub fn assignments(&self) -> &[(String, bool)] {
        &self.assigns
    }

    /// Case label for reports, e.g. `CONTROL SIGNAL = 1`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.assigns.is_empty() {
            "no case overrides".to_owned()
        } else {
            self.assigns
                .iter()
                .map(|(s, v)| format!("{s} = {}", u8::from(*v)))
                .collect::<Vec<_>>()
                .join("; ")
        }
    }
}

/// Errors raised while running the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The circuit failed to settle: a combinational loop (or model bug)
    /// kept generating events past the evaluation budget.
    Oscillation {
        /// How many primitive evaluations were performed before giving up.
        evaluations: u64,
        /// Names of some primitives still active.
        active: Vec<String>,
    },
    /// A case names a signal not present in the design.
    UnknownCaseSignal {
        /// The missing signal name.
        name: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Oscillation {
                evaluations,
                active,
            } => write!(
                f,
                "circuit did not settle after {evaluations} evaluations; \
                 still active: {}",
                active.join(", ")
            ),
            VerifyError::UnknownCaseSignal { name } => {
                write!(f, "case analysis names unknown signal {name:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Options for one [`Verifier::run`]: the cases to analyse, an optional
/// per-run worker override, and whether to checkpoint the settled base.
/// The default (`RunOptions::new()`) verifies the single no-override
/// base case.
///
/// # Examples
///
/// ```ignore
/// let outcome = verifier.run(
///     &RunOptions::new()
///         .case(Case::new().assign("MODE", true))
///         .case(Case::new().assign("MODE", false))
///         .jobs(4)
///         .checkpoint(CheckpointPolicy::SettledBase),
/// )?;
/// ```
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct RunOptions {
    cases: Vec<Case>,
    jobs: Option<usize>,
    checkpoint: CheckpointPolicy,
}

impl RunOptions {
    /// Options for a plain single-case (no-override) run.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Sets the cases to analyse (§2.7), replacing any set before. An
    /// empty list means "just the base case": the outcome then holds one
    /// [`CaseResult`] with no overrides.
    pub fn cases(mut self, cases: impl Into<Vec<Case>>) -> RunOptions {
        self.cases = cases.into();
        self
    }

    /// Adds one case to the analysis.
    pub fn case(mut self, case: Case) -> RunOptions {
        self.cases.push(case);
        self
    }

    /// Overrides the verifier's worker budget for this run only (clamped
    /// to at least 1). The budget covers case fan-out *and* intra-settle
    /// wave evaluation — see [`VerifierBuilder::jobs`]. Results are
    /// byte-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> RunOptions {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the checkpoint policy; see [`CheckpointPolicy`].
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> RunOptions {
        self.checkpoint = policy;
        self
    }
}

/// Whether [`Verifier::run`] snapshots the verifier at the settled base
/// (the §2.9 fixed point, before any case overlay is installed) into
/// [`RunOutcome::checkpoint`]. The snapshot is the correct `prior` for a
/// later [`Verifier::warm_start`]; `scald-incr` uses it to checkpoint
/// sessions without a separate settle call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// No snapshot (the default); [`RunOutcome::checkpoint`] is `None`.
    #[default]
    None,
    /// Clone the verifier right after the base settle, before the case
    /// fan-out. Costs one deep copy of the design state.
    SettledBase,
}

/// Effort of the base (no-override) settle inside one [`Verifier::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaseResult {
    /// Signal-change events during the base settle.
    pub events: u64,
    /// Primitive evaluations during the base settle.
    pub evaluations: u64,
    /// `true` for a cold full settle (every primitive enqueued, §2.9)
    /// rather than a return to an already settled base. On a cold run
    /// the base effort is *also* folded into the first case's counters,
    /// preserving the invariant that per-case counters sum to the
    /// engine totals.
    pub full_settle: bool,
}

/// Everything one [`Verifier::run`] produced: the base settle's effort,
/// one [`CaseResult`] per analysed case, and (when requested) a
/// settled-base checkpoint for incremental re-verification.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The base settle's effort, shared by every case.
    pub base: BaseResult,
    /// Per-case results in input order — never empty (a run with no
    /// explicit cases analyses the implicit base case).
    pub cases: Vec<CaseResult>,
    /// The settled-base snapshot, if
    /// [`CheckpointPolicy::SettledBase`] was requested.
    pub checkpoint: Option<Box<Verifier>>,
}

impl RunOutcome {
    /// The sole case's result — the common accessor for single-case runs.
    ///
    /// # Panics
    ///
    /// Panics if the run analysed more than one case.
    #[must_use]
    pub fn sole(&self) -> &CaseResult {
        assert!(
            self.cases.len() == 1,
            "RunOutcome::sole on a {}-case run",
            self.cases.len()
        );
        &self.cases[0]
    }

    /// Owning [`sole`](Self::sole): consumes the outcome and returns the
    /// single case's result.
    ///
    /// # Panics
    ///
    /// Panics if the run analysed more than one case.
    #[must_use]
    pub fn into_sole(self) -> CaseResult {
        assert!(
            self.cases.len() == 1,
            "RunOutcome::into_sole on a {}-case run",
            self.cases.len()
        );
        self.cases.into_iter().next().expect("one case")
    }
}

/// Configures and builds a [`Verifier`]: the front door for everything
/// beyond a plain run — worker-pool size, oscillation budget, and an
/// observability [`TraceSink`].
///
/// [`Verifier::new`] is a shim over the all-defaults builder, so simple
/// callers never see this type.
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_trace::CounterSink;
/// use scald_verifier::{RunOptions, VerifierBuilder};
/// use scald_wave::{DelayRange, Time};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let sink = Arc::new(CounterSink::new());
/// let mut v = VerifierBuilder::new(b.finish()?)
///     .jobs(2)
///     .trace(Arc::clone(&sink) as Arc<_>)
///     .build();
/// let outcome = v.run(&RunOptions::new())?;
/// assert!(outcome.sole().is_clean());
/// assert_eq!(sink.snapshot().evaluations, outcome.sole().evaluations);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
#[must_use]
pub struct VerifierBuilder {
    jobs: Option<usize>,
    oscillation_budget: Option<u64>,
    trace: Option<Arc<dyn TraceSink>>,
    netlist: Option<Netlist>,
    eval_cache: Option<bool>,
    shared_cache: Option<Arc<EvalCache>>,
}

impl VerifierBuilder {
    /// Starts a builder for verifying `netlist`, with default worker
    /// count (available parallelism), default oscillation budget
    /// (256 evaluations per primitive, plus slack for tiny designs) and
    /// no tracing.
    pub fn new(netlist: Netlist) -> VerifierBuilder {
        VerifierBuilder {
            netlist: Some(netlist),
            ..VerifierBuilder::default()
        }
    }

    /// Sets the run's worker budget (clamped to at least 1). One budget
    /// governs *both* parallel dimensions: case fan-out across the case
    /// pool and wave evaluation inside every settle loop. Nested settles
    /// split the budget — with `jobs(8)` and 4 cases, 4 case workers
    /// each evaluate waves 2 wide — so a run never oversubscribes the
    /// machine. [`RunOptions::jobs`] overrides this per run; results are
    /// byte-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> VerifierBuilder {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the oscillation budget: the maximum primitive evaluations one
    /// settle pass may perform before the engine reports
    /// [`VerifyError::Oscillation`]. Lower it to fail fast on designs
    /// with suspected combinational loops; raise it for pathological but
    /// convergent circuits.
    pub fn oscillation_budget(mut self, evaluations: u64) -> VerifierBuilder {
        self.oscillation_budget = Some(evaluations.max(1));
        self
    }

    /// Attaches an observability sink. Every settle loop then emits
    /// [`TraceEvent`]s (per-primitive evaluations, per-signal settle
    /// ordinals, queue depths, per-case wall-clock/effort). Without a
    /// sink the engine pays only an `Option` check per evaluation.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> VerifierBuilder {
        self.trace = Some(sink);
        self
    }

    /// Enables or disables the evaluation memo table (on by default).
    /// Disabling it (`--no-eval-cache` on the CLI) re-runs every kernel —
    /// the A/B baseline for benchmarking; results are byte-identical
    /// either way.
    pub fn eval_cache(mut self, enabled: bool) -> VerifierBuilder {
        self.eval_cache = Some(enabled);
        self
    }

    /// Injects an existing [`EvalCache`] instead of creating a private
    /// one, so several verifiers (e.g. a `scald-incr` session's
    /// re-verifications) share one memo table. Ignored if the cache is
    /// explicitly disabled via [`eval_cache(false)`](Self::eval_cache).
    pub fn shared_eval_cache(mut self, cache: Arc<EvalCache>) -> VerifierBuilder {
        self.shared_cache = Some(cache);
        self
    }

    /// Builds the verifier and initializes all signal states per §2.9.
    ///
    /// # Panics
    ///
    /// Panics if the builder was obtained via `Default` instead of
    /// [`VerifierBuilder::new`] (there is no netlist to verify).
    #[must_use]
    pub fn build(self) -> Verifier {
        let netlist = self.netlist.expect("VerifierBuilder::new sets the netlist");
        let budget = self
            .oscillation_budget
            .unwrap_or_else(|| 256 * (netlist.prims().len() as u64 + 64));
        let cache = if self.eval_cache.unwrap_or(true) {
            Some(self.shared_cache.unwrap_or_default())
        } else {
            None
        };
        let mut v = Verifier::init(netlist);
        if let Some(cache) = cache {
            // Intern every primitive's static descriptor once: unchanged
            // prims of a rebuilt (incr-session) netlist land on the same
            // signature, which is what makes warm re-runs hit.
            v.prim_sigs = Arc::new(
                v.netlist
                    .prims()
                    .iter()
                    .map(|p| cache.sig_for_prim(&v.netlist, p))
                    .collect(),
            );
            v.eval_cache = Some(cache);
        }
        v.jobs = self.jobs.unwrap_or_else(default_jobs);
        v.budget = budget;
        v.trace = self.trace;
        v
    }
}

/// The SCALD Timing Verifier: simulates one clock period of the circuit
/// symbolically and checks every timing constraint (§2.1, §2.9).
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_verifier::{RunOptions, Verifier};
/// use scald_wave::{DelayRange, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let mut v = Verifier::new(b.finish()?);
/// let outcome = v.run(&RunOptions::new())?;
/// assert!(outcome.sole().is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Verifier {
    netlist: Netlist,
    /// Computed (pre-case-mapping) states, struct-of-arrays.
    raw: SoaState,
    /// Effective states seen by evaluation: raw with case overrides applied.
    eff: SoaState,
    /// Signals whose state is fixed by an assertion (clocks, asserted or
    /// assumed-stable undriven signals) and never overwritten by a driver.
    pinned: Vec<bool>,
    queue: VecDeque<PrimId>,
    queued: Vec<bool>,
    /// Case overrides in force. `BTreeMap` so any iteration that reaches
    /// a report or trace is in signal order, never `HashMap` order.
    overrides: BTreeMap<SignalId, Value>,
    hazards: BTreeSet<(PrimId, usize)>,
    /// Undriven, unasserted signals assumed always stable (§2.5) — the
    /// special cross-reference listing for the designer.
    assumed_stable: Vec<SignalId>,
    /// Driven signals whose clock assertion pins their value (§2.6 clock
    /// tuning): the driver's computed value is ignored.
    pinned_clock_drivers: Vec<SignalId>,
    /// Per-driver output states for wired-OR signals (§3.1, Fig 3-1's
    /// ECL bus): the signal's effective value is the worst-case OR of all
    /// contributions. `BTreeMap` keeps every walk of it deterministic.
    wired_contributions: BTreeMap<(SignalId, PrimId), SignalState>,
    total_events: u64,
    total_evaluations: u64,
    /// Set by [`warm_start`](Self::warm_start): suppresses the
    /// enqueue-everything initial pass even when no evaluation has
    /// happened yet (a warm verifier whose dirty cone is empty must not
    /// re-evaluate the whole design).
    warmed: bool,
    /// Default worker budget for [`run`](Self::run): case fan-out and
    /// intra-settle wave evaluation share it.
    jobs: usize,
    /// Evaluation budget per settle pass before declaring oscillation.
    budget: u64,
    /// Observability sink; `None` keeps the hot loops branch-only.
    trace: Option<Arc<dyn TraceSink>>,
    /// Memo table for pure primitive evaluations; shared (`Arc`) so
    /// checkpoint clones and incr-session re-verifications reuse it.
    eval_cache: Option<Arc<EvalCache>>,
    /// Per-primitive descriptor signature in the cache (`None` for
    /// checkers); indexed by `PrimId::index()`. Empty when uncached.
    prim_sigs: Arc<Vec<Option<u32>>>,
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Verifier")
            .field("signals", &self.netlist.signals().len())
            .field("prims", &self.netlist.prims().len())
            .field("jobs", &self.jobs)
            .field("budget", &self.budget)
            .field("traced", &self.trace.is_some())
            .field("cached", &self.eval_cache.is_some())
            .field("total_events", &self.total_events)
            .field("total_evaluations", &self.total_evaluations)
            .finish_non_exhaustive()
    }
}

impl Verifier {
    /// Creates a verifier with all defaults — a shim over
    /// [`VerifierBuilder`], which configures worker count, oscillation
    /// budget and tracing.
    #[must_use]
    pub fn new(netlist: Netlist) -> Verifier {
        VerifierBuilder::new(netlist).build()
    }

    /// Initializes all signal states per §2.9: asserted signals take
    /// their asserted values, undriven unasserted signals are assumed
    /// stable (and cross-referenced), everything else starts `U`.
    fn init(netlist: Netlist) -> Verifier {
        let period = netlist.config().timing.period;
        let timing = netlist.config().timing;
        let n = netlist.signals().len();
        let mut raw = SoaState::with_capacity(n);
        let mut pinned = vec![false; n];
        let mut assumed_stable = Vec::new();
        let mut pinned_clock_drivers = Vec::new();

        for (sid, sig) in netlist.iter_signals() {
            let driven = netlist.driver(sid).is_some();
            let state = match &sig.assertion {
                Some(a) if a.kind.is_clock() => {
                    let (wave, skew) = a.to_state(&timing);
                    pinned[sid.index()] = true;
                    if driven {
                        pinned_clock_drivers.push(sid);
                    }
                    SignalState {
                        wave: wave.into(),
                        skew,
                        eval: None,
                    }
                }
                Some(a) => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        let (wave, skew) = a.to_state(&timing);
                        SignalState {
                            wave: wave.into(),
                            skew,
                            eval: None,
                        }
                    }
                }
                None => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        assumed_stable.push(sid);
                        SignalState::new(Waveform::constant(period, Value::Stable))
                    }
                }
            };
            raw.push(state);
        }

        let eff = raw.clone();
        let queued = vec![false; netlist.prims().len()];
        Verifier {
            netlist,
            raw,
            eff,
            pinned,
            queue: VecDeque::new(),
            queued,
            overrides: BTreeMap::new(),
            hazards: BTreeSet::new(),
            wired_contributions: BTreeMap::new(),
            assumed_stable,
            pinned_clock_drivers,
            total_events: 0,
            total_evaluations: 0,
            warmed: false,
            jobs: 1,
            budget: 0,
            trace: None,
            eval_cache: None,
            prim_sigs: Arc::new(Vec::new()),
        }
    }

    /// The netlist being verified.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The settled effective state of a signal (after [`run`](Self::run)).
    /// Owned: the engine keeps states in parallel arrays, so there is no
    /// single record to borrow; the clone is a reference-count bump on
    /// the interned wave handle.
    #[must_use]
    pub fn state(&self, id: SignalId) -> SignalState {
        self.eff.state(id.index())
    }

    /// The fully resolved (skew-folded) waveform of a signal.
    #[must_use]
    pub fn resolved(&self, id: SignalId) -> Waveform {
        self.eff.get(id.index()).resolved().to_waveform()
    }

    /// Hit/miss/size counters of the evaluation memo table, if caching is
    /// enabled.
    #[must_use]
    pub fn eval_cache_stats(&self) -> Option<crate::EvalCacheStats> {
        self.eval_cache.as_ref().map(|c| c.stats())
    }

    /// Undriven, unasserted signals assumed always stable — the thesis'
    /// special cross-reference listing (§2.5).
    #[must_use]
    pub fn assumed_stable_signals(&self) -> &[SignalId] {
        &self.assumed_stable
    }

    /// Total events processed so far (an event = an output given a new
    /// value, §3.3.2).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total primitive evaluations performed so far.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.total_evaluations
    }

    fn apply_override(&self, sid: SignalId, state: StateRef<'_>) -> SignalState {
        override_state(self.overrides.get(&sid).copied(), state)
    }

    fn enqueue(&mut self, pid: PrimId) {
        if !self.queued[pid.index()] {
            self.queued[pid.index()] = true;
            self.queue.push_back(pid);
        }
    }

    fn enqueue_fanout(&mut self, sid: SignalId) {
        let fanout: Vec<PrimId> = self.netlist.fanout(sid).to_vec();
        for pid in fanout {
            self.enqueue(pid);
        }
    }

    /// Runs the worklist to a fixed point with `wave_jobs` evaluation
    /// workers per wave; returns `(events, evaluations)`. Effort is
    /// folded into the running totals on the error path too, matching
    /// the thesis' effort accounting.
    fn settle(&mut self, wave_jobs: usize) -> Result<(u64, u64), VerifyError> {
        let mut events = 0u64;
        let mut evaluations = 0u64;
        let result = settle_waves(
            &WaveParams {
                netlist: &self.netlist,
                pinned: &self.pinned,
                overrides: &self.overrides,
                budget: self.budget,
                jobs: wave_jobs,
                case: None,
                trace: self.trace.as_deref(),
                cache: self
                    .eval_cache
                    .as_deref()
                    .map(|c| (c, self.prim_sigs.as_slice())),
            },
            WaveBooks {
                hazards: &mut self.hazards,
                wired: &mut self.wired_contributions,
                queue: &mut self.queue,
                queued: &mut self.queued,
                events: &mut events,
                evaluations: &mut evaluations,
            },
            &mut self.raw,
            &mut self.eff,
        );
        self.total_events += events;
        self.total_evaluations += evaluations;
        result.map(|()| (events, evaluations))
    }

    /// Applies a case's overrides, dirtying the affected signals' fan-out.
    fn apply_case(&mut self, case: &Case) -> Result<(), VerifyError> {
        let mut new_overrides = BTreeMap::new();
        for (name, v) in case.assignments() {
            let sid = self
                .netlist
                .signal_by_name(name)
                .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
            new_overrides.insert(sid, if *v { Value::One } else { Value::Zero });
        }
        let affected: BTreeSet<SignalId> = self
            .overrides
            .keys()
            .chain(new_overrides.keys())
            .copied()
            .collect();
        self.overrides = new_overrides;
        for sid in affected {
            let eff = self.apply_override(sid, self.raw.get(sid.index()));
            if self.eff.get(sid.index()) != eff {
                self.eff.set(sid.index(), eff);
                self.enqueue_fanout(sid);
            }
        }
        Ok(())
    }

    /// Settles the base (no-override) fixed point and returns the
    /// `(events, evaluations)` this settle took. On a fresh verifier this
    /// is the full evaluation of §2.9; on a [warm-started](Self::warm_start)
    /// one only the seeded dirty cone is processed.
    ///
    /// A verifier in this state is the correct `prior` for a later
    /// [`warm_start`](Self::warm_start): its signal states, hazard set and
    /// wired-OR contributions describe the base fixed point, not some
    /// case's overlay (which [`run`](Self::run) installs when it
    /// finishes). [`CheckpointPolicy::SettledBase`] captures the same
    /// state without a separate settle call.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Oscillation`] if the circuit does not
    /// settle.
    pub fn settle_base(&mut self) -> Result<(u64, u64), VerifyError> {
        let first_run = self.total_evaluations == 0 && !self.warmed;
        self.apply_case(&Case::new())?;
        if first_run {
            let all: Vec<PrimId> = self.netlist.iter_prims().map(|(p, _)| p).collect();
            for pid in all {
                self.enqueue(pid);
            }
        }
        self.settle(self.jobs)
    }

    /// Seeds this (freshly built, not yet run) verifier from `prior`'s
    /// settled base fixed point, so the next settle only re-evaluates the
    /// structurally dirty cone. The caller asserts, via the maps, which
    /// parts of the design survived the edit:
    ///
    /// * `signal_map` — `(self, prior)` id pairs of signals whose
    ///   definition (width, assertion, wire delay, wired-OR flag, driver
    ///   set) is unchanged. Their settled states are copied over; every
    ///   other signal keeps its §2.9 init value until re-derived.
    /// * `prim_map` — `(self, prior)` id pairs of unchanged primitives.
    ///   Their recorded hazards and wired-OR contributions carry over.
    /// * `seeds` — the dirty frontier to enqueue: edited primitives, the
    ///   fan-out of dirtied signals, *and the drivers of dirtied signals*
    ///   (a dirtied signal's value must be recomputed even when its
    ///   driver itself is clean). Propagation handles everything
    ///   transitively downstream.
    ///
    /// `prior` must be at its settled base — i.e. right after
    /// [`settle_base`](Self::settle_base), before any case overlay was
    /// installed. With correct maps the subsequent
    /// [`settle_base`](Self::settle_base)/[`run`](Self::run)
    /// reach a state identical to a cold run of the edited design
    /// (`scald-incr` property-tests this; see `Report::strip_effort` for
    /// the one caveat, effort counters). Exactness relies on hazard sets
    /// being trajectory-independent, which holds for connection-attribute
    /// directives (`&H` on a pin); designs relying on *propagated*
    /// evaluation directives through edited regions should re-verify
    /// cold.
    pub fn warm_start(
        &mut self,
        prior: &Verifier,
        signal_map: &[(SignalId, SignalId)],
        prim_map: &[(PrimId, PrimId)],
        seeds: &[PrimId],
    ) {
        let mut copied = 0usize;
        for &(new, old) in signal_map {
            if self.pinned[new.index()] {
                continue; // init already pinned it to its asserted value
            }
            let st = prior.raw.state(old.index());
            self.eff.set(new.index(), st.clone());
            self.raw.set(new.index(), st);
            copied += 1;
        }
        let prim_back: HashMap<PrimId, PrimId> =
            prim_map.iter().map(|&(new, old)| (old, new)).collect();
        let sig_back: HashMap<SignalId, SignalId> =
            signal_map.iter().map(|&(new, old)| (old, new)).collect();
        for &(pid, idx) in &prior.hazards {
            if let Some(&np) = prim_back.get(&pid) {
                self.hazards.insert((np, idx));
            }
        }
        for (&(sid, pid), st) in &prior.wired_contributions {
            if let (Some(&ns), Some(&np)) = (sig_back.get(&sid), prim_back.get(&pid)) {
                if self.netlist.drivers(ns).contains(&np) {
                    self.wired_contributions.insert((ns, np), st.clone());
                }
            }
        }
        for &pid in seeds {
            self.enqueue(pid);
        }
        self.warmed = true;
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::WarmStart {
                copied_signals: copied,
                seeded_prims: self.queue.len(),
                prims: self.netlist.prims().len(),
            });
        }
    }

    /// Verifies the circuit per `options` — the single entry point for
    /// plain runs, case analysis (§2.7) and incremental sessions. The
    /// base (no-override) fixed point is settled once — the full
    /// evaluation of §2.9 on a cold verifier, only the dirty cone after
    /// a [`warm_start`](Self::warm_start) — then every case re-evaluates
    /// the cone its overrides dirty on its own copy-on-write overlay,
    /// fanned across the worker budget.
    ///
    /// Results are deterministic: waveforms, violation lists, report
    /// JSON and per-case trace streams are byte-identical for every
    /// worker budget (`tests/parallel_settle.rs` proves it).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::UnknownCaseSignal`] if a case names an
    /// unknown signal (checked up front, before any evaluation) and
    /// [`VerifyError::Oscillation`] if a settle exceeds the evaluation
    /// budget. On a case error the first failing case (by input order)
    /// is reported; completed cases' effort still counts in the totals.
    pub fn run(&mut self, options: &RunOptions) -> Result<RunOutcome, VerifyError> {
        let base_case;
        let cases: &[Case] = if options.cases.is_empty() {
            base_case = [Case::new()];
            &base_case
        } else {
            &options.cases
        };
        self.run_impl(
            cases,
            options.jobs.unwrap_or(self.jobs),
            options.checkpoint == CheckpointPolicy::SettledBase,
        )
    }

    /// The engine behind [`run`](Self::run): resolves case names, settles
    /// the base with the full worker budget, optionally checkpoints, then
    /// fans the cases across the pool with the budget split between case
    /// workers and per-case wave evaluation.
    fn run_impl(
        &mut self,
        cases: &[Case],
        jobs: usize,
        checkpoint: bool,
    ) -> Result<RunOutcome, VerifyError> {
        let run_started = Instant::now();
        let effort_before = (self.total_events, self.total_evaluations);
        // Split the worker budget: W case workers each evaluating waves
        // J/W wide never oversubscribe a J-job budget.
        let jobs = jobs.max(1);
        let case_workers = jobs.min(cases.len());
        let wave_jobs = (jobs / case_workers).max(1);
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::RunStart {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: cases.len(),
                jobs: case_workers,
            });
        }
        // Resolve every case's signal names up front, so an unknown name
        // errors deterministically before any evaluation runs.
        let mut resolved: Vec<Vec<(SignalId, Value)>> = Vec::with_capacity(cases.len());
        for case in cases {
            let mut assigns = Vec::with_capacity(case.assignments().len());
            for (name, v) in case.assignments() {
                let sid = self
                    .netlist
                    .signal_by_name(name)
                    .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
                assigns.push((sid, if *v { Value::One } else { Value::Zero }));
            }
            // Deterministic seeding order for the worker's worklist.
            assigns.sort_by_key(|(sid, _)| sid.index());
            resolved.push(assigns);
        }

        // Establish (or return to) the settled base: no overrides. The
        // base settle gets the whole budget — no case worker is running
        // yet.
        let first_run = self.total_evaluations == 0 && !self.warmed;
        self.apply_case(&Case::new())?;
        if first_run {
            // Initial pass evaluates everything (§2.9).
            let all: Vec<PrimId> = self.netlist.iter_prims().map(|(p, _)| p).collect();
            for pid in all {
                self.enqueue(pid);
            }
        }
        let (base_events, base_evaluations) = self.settle(jobs)?;
        let checkpoint = checkpoint.then(|| Box::new(self.clone()));

        // Fan the cases across the pool. Each worker repeatedly claims
        // the next unclaimed case index and settles it against the shared
        // immutable base; per-case effort is summed into the totals with
        // atomics as workers finish.
        let netlist = &self.netlist;
        let base_raw: &SoaState = &self.raw;
        let base_eff: &SoaState = &self.eff;
        let pinned: &[bool] = &self.pinned;
        let base_hazards = &self.hazards;
        let base_wired = &self.wired_contributions;
        let budget = self.budget;
        let cache: Option<(&EvalCache, &[Option<u32>])> = self
            .eval_cache
            .as_deref()
            .map(|c| (c, self.prim_sigs.as_slice()));
        let trace: Option<&dyn TraceSink> = self.trace.as_deref();
        let labels: Vec<String> = cases.iter().map(Case::label).collect();
        let events_total = AtomicU64::new(0);
        let evaluations_total = AtomicU64::new(0);
        let work = |i: usize| {
            if let Some(t) = trace {
                t.record(&TraceEvent::CaseStart {
                    case: i as u32,
                    label: &labels[i],
                });
            }
            let case_started = Instant::now();
            let outcome = settle_case(
                netlist,
                base_raw,
                base_eff,
                pinned,
                base_hazards,
                base_wired,
                &resolved[i],
                budget,
                wave_jobs,
                cache,
                trace.map(|t| (t, i as u32)),
            );
            if let Ok(o) = &outcome {
                events_total.fetch_add(o.events, Ordering::Relaxed);
                evaluations_total.fetch_add(o.evaluations, Ordering::Relaxed);
                if let Some(t) = trace {
                    t.record(&TraceEvent::CaseEnd {
                        case: i as u32,
                        wall_nanos: u64::try_from(case_started.elapsed().as_nanos())
                            .unwrap_or(u64::MAX),
                        events: o.events,
                        evaluations: o.evaluations,
                        violations: o.violations.len(),
                    });
                }
            }
            outcome
        };
        let mut outcomes: Vec<Option<Result<CaseOutcome, VerifyError>>> = if case_workers == 1 {
            (0..cases.len()).map(|i| Some(work(i))).collect()
        } else {
            let slots: Vec<Mutex<Option<Result<CaseOutcome, VerifyError>>>> =
                (0..cases.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..case_workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cases.len() {
                            break;
                        }
                        let outcome = work(i);
                        *slots[i].lock().expect("case slot poisoned") = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("case slot poisoned"))
                .collect()
        };
        self.total_events += events_total.into_inner();
        self.total_evaluations += evaluations_total.into_inner();

        // Merge in input-case order; the first error (by case index) wins.
        let mut results = Vec::with_capacity(cases.len());
        let mut last: Option<CaseOutcome> = None;
        for (i, slot) in outcomes.iter_mut().enumerate() {
            let mut outcome = slot.take().expect("worker filled every case slot")?;
            results.push(CaseResult {
                name: format!("case {}: {}", i + 1, cases[i].label()),
                violations: std::mem::take(&mut outcome.violations),
                events: outcome.events + if i == 0 && first_run { base_events } else { 0 },
                evaluations: outcome.evaluations
                    + if i == 0 && first_run {
                        base_evaluations
                    } else {
                        0
                    },
                value_records: outcome.value_records,
            });
            last = Some(outcome);
        }

        // Install the last case's state so `state`/`resolved`/listings
        // reflect it, exactly as the serial path left things.
        let last = last.expect("cases is non-empty");
        for (idx, st) in last.raw_overlay {
            self.raw.set(idx, st);
        }
        for (idx, st) in last.eff_overlay {
            self.eff.set(idx, st);
        }
        self.overrides = last.overrides;
        self.hazards = last.hazards;
        self.wired_contributions = last.wired;
        if let Some(trace) = &self.trace {
            // Effort-class observability: cache counters vary with cache
            // configuration and sharing, so (like RunEnd's wall-clock)
            // they are excluded from determinism comparisons.
            if let Some(cache) = &self.eval_cache {
                let stats = cache.stats();
                trace.record(&TraceEvent::CacheStats {
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                });
            }
            trace.record(&TraceEvent::RunEnd {
                wall_nanos: u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                events: self.total_events - effort_before.0,
                evaluations: self.total_evaluations - effort_before.1,
            });
        }
        Ok(RunOutcome {
            base: BaseResult {
                events: base_events,
                evaluations: base_evaluations,
                full_settle: first_run,
            },
            cases: results,
            checkpoint,
        })
    }

    /// Runs all checks against the current settled state without further
    /// evaluation. Useful for inspecting intermediate cases.
    #[must_use]
    pub fn check_now(&self) -> Vec<Violation> {
        let hazards: Vec<(PrimId, usize)> = self.hazards.iter().copied().collect();
        run_all_checks(&self.netlist, &self.eff, &hazards)
    }

    /// The signal-value summary listing of Fig 3-10: one line per signal
    /// with its value over the cycle.
    #[must_use]
    pub fn summary_listing(&self) -> String {
        crate::report::format_summary(&self.sorted_waves())
    }

    /// The cross-reference listing of undriven, unasserted signals the
    /// verifier assumed stable (§2.5).
    #[must_use]
    pub fn xref_listing(&self) -> String {
        crate::report::format_xref(&self.assumed_stable_names(), &self.clock_driver_notes())
    }

    /// Storage accounting in the categories of Table 3-3.
    #[must_use]
    pub fn storage_report(&self) -> StorageReport {
        StorageReport::measure(&self.netlist, &self.raw)
    }

    /// Timing margins of every checker against the current settled state:
    /// the slack view (worst margins first). Negative slack corresponds to
    /// a reported violation.
    #[must_use]
    pub fn slack_report(&self) -> Vec<CheckMargin> {
        slack_report(&self.netlist, &self.eff)
    }

    /// An ASCII timing diagram of all signals (sorted by name), `columns`
    /// buckets wide — the visual companion to
    /// [`summary_listing`](Self::summary_listing).
    #[must_use]
    pub fn timing_diagram(&self, columns: usize) -> String {
        crate::diagram::render_diagram(&self.sorted_waves(), columns)
    }

    /// Every signal's resolved waveform against the current settled
    /// state, sorted by full name — the rows behind the summary listing
    /// and the timing diagram.
    fn sorted_waves(&self) -> Vec<(String, Waveform)> {
        let mut rows: Vec<(String, Waveform)> = self
            .netlist
            .iter_signals()
            .map(|(sid, sig)| (sig.full_name(), self.resolved(sid)))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    fn assumed_stable_names(&self) -> Vec<String> {
        self.assumed_stable
            .iter()
            .map(|sid| self.netlist.signal(*sid).name.clone())
            .collect()
    }

    fn clock_driver_notes(&self) -> Vec<String> {
        self.pinned_clock_drivers
            .iter()
            .map(|sid| self.netlist.signal(*sid).full_name())
            .collect()
    }

    /// Bundles everything this verifier knows about its last run into one
    /// [`Report`]: the per-case results, engine statistics, the slack and
    /// storage views, the assumed-stable cross-reference and every settled
    /// waveform. `design` labels the report (usually the source path);
    /// `results` are the [`RunOutcome::cases`] of [`run`](Self::run).
    ///
    /// The caller may fill in [`EngineStats::verify_wall`] afterwards if
    /// it measured the run.
    #[must_use]
    pub fn report(&self, design: impl Into<String>, results: &[CaseResult]) -> Report {
        Report {
            design: design.into(),
            cases: results.to_vec(),
            engine: EngineStats {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: results.len(),
                jobs: self.jobs,
                events: self.total_events,
                evaluations: self.total_evaluations,
                verify_wall: None,
                eval_cache: self.eval_cache.as_ref().map(|c| c.stats()),
            },
            slack: self.slack_report(),
            storage: self.storage_report(),
            assumed_stable: self.assumed_stable_names(),
            clock_driver_notes: self.clock_driver_notes(),
            waves: self.sorted_waves(),
            period: self.netlist.config().timing.period,
        }
    }
}

/// The default worker budget for [`Verifier::run`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies a case override to a computed state: the override replaces the
/// signal's value wherever the circuit would leave it merely *stable*
/// (§2.7.1) — asserted changing windows and computed constants win.
fn override_state(over: Option<Value>, state: StateRef<'_>) -> SignalState {
    match over {
        None => state.to_state(),
        Some(v) => SignalState {
            wave: state
                .wave
                .map(|x| if x == Value::Stable { v } else { x })
                .into(),
            skew: state.skew,
            eval: state.eval.clone(),
        },
    }
}

/// Immutable inputs of one settle loop, shared by the base settle (the
/// engine's struct-of-arrays state) and the per-case settle (cone
/// overlays).
struct WaveParams<'a> {
    netlist: &'a Netlist,
    pinned: &'a [bool],
    overrides: &'a BTreeMap<SignalId, Value>,
    budget: u64,
    /// Wave-evaluation workers; 1 keeps everything on this thread.
    jobs: usize,
    /// Case index for trace events; `None` for the base settle.
    case: Option<u32>,
    trace: Option<&'a dyn TraceSink>,
    /// Evaluation memo table plus per-primitive descriptor signatures;
    /// `None` when caching is disabled.
    cache: Option<(&'a EvalCache, &'a [Option<u32>])>,
}

/// What the serial commit phase must do for one wave entry — precomputed
/// during the (possibly parallel) evaluation phase against the frozen
/// pre-wave state, so the serial residue only *applies* effects.
///
/// The precompute is sound for single-driver signals because a wave is a
/// deduplicated primitive list: a signal's sole driver appears at most
/// once per wave, so the frozen pre-wave `raw`/`eff` values it compared
/// against are exactly the live values at its commit slot. Wired-OR
/// buses (several drivers possibly in one wave) recombine against live
/// state and stay on the serial path.
enum CommitPlan {
    /// Nothing to apply: a checker, a pinned output, or an output whose
    /// recomputed state equals the committed one.
    Skip,
    /// The raw state changes but the effective (override-mapped) state
    /// does not: store the outcome's output, emit no event.
    Raw {
        /// The driven signal.
        out: SignalId,
    },
    /// Both raw and effective state change: store both, count an event,
    /// enqueue the fan-out.
    RawEff {
        /// The driven signal.
        out: SignalId,
        /// The already-override-mapped effective state.
        new_eff: SignalState,
    },
    /// A wired-OR bus: must be recombined serially against the live
    /// contribution map.
    Wired {
        /// The driven signal.
        out: SignalId,
    },
}

/// Plans the commit of one evaluated primitive against the frozen
/// pre-wave state. See [`CommitPlan`] for the soundness argument.
fn plan_commit<R, E>(
    p: &WaveParams<'_>,
    pid: PrimId,
    outcome: &EvalOutcome,
    raw: &R,
    eff: &E,
) -> CommitPlan
where
    R: StateView + ?Sized,
    E: StateView + ?Sized,
{
    let prim = p.netlist.prim(pid);
    let (Some(new_state), Some(out)) = (&outcome.output, prim.output) else {
        return CommitPlan::Skip;
    };
    if p.pinned[out.index()] {
        return CommitPlan::Skip; // asserted clocks keep their asserted value
    }
    if p.netlist.drivers(out).len() > 1 {
        return CommitPlan::Wired { out };
    }
    if raw.state_at(out.index()) == *new_state {
        return CommitPlan::Skip;
    }
    let new_eff = override_state(p.overrides.get(&out).copied(), new_state.into());
    if eff.state_at(out.index()) == new_eff {
        CommitPlan::Raw { out }
    } else {
        CommitPlan::RawEff { out, new_eff }
    }
}

/// Mutable bookkeeping of one settle loop, borrowed from whoever owns
/// it (the [`Verifier`] for the base settle, the case worker's locals
/// for a case settle). `events`/`evaluations` accumulate even when the
/// loop errors out, so callers can fold partial effort into totals.
struct WaveBooks<'a> {
    hazards: &'a mut BTreeSet<(PrimId, usize)>,
    wired: &'a mut BTreeMap<(SignalId, PrimId), SignalState>,
    queue: &'a mut VecDeque<PrimId>,
    queued: &'a mut [bool],
    events: &'a mut u64,
    evaluations: &'a mut u64,
}

/// One level-synchronized settle loop — the wave engine. Each iteration
/// drains the worklist into a deduplicated wave, evaluates every
/// primitive of the wave against the frozen pre-wave state
/// (concurrently when `jobs` allows), then commits the results on this
/// thread in primitive-id order.
///
/// Determinism: an evaluation reads only state committed by *previous*
/// waves, so in-wave evaluation order is unobservable; the serial,
/// sorted commit makes event emission, wired-OR recombination, hazard
/// recording and fan-out enqueueing identical for every worker count.
/// The oscillation budget is charged per committed evaluation, and a
/// budget overrun aborts *before* the offending primitive's effects are
/// applied — exactly the single-worklist engine's semantics. A commit
/// that changes a signal read by a later member of the same wave simply
/// re-enqueues that member: its stale result is committed now and
/// corrected next wave, which cannot change the fixed point because
/// evaluation is a pure function of the inputs.
fn settle_waves<R, E>(
    p: &WaveParams<'_>,
    books: WaveBooks<'_>,
    raw: &mut R,
    eff: &mut E,
) -> Result<(), VerifyError>
where
    R: StateStore + ?Sized,
    E: StateStore + ?Sized,
{
    let WaveBooks {
        hazards,
        wired,
        queue,
        queued,
        events,
        evaluations,
    } = books;
    let period = p.netlist.config().timing.period;
    // More workers than hardware threads measures nothing but spawn
    // overhead, so an oversized `--jobs` is capped here; the trajectory
    // is worker-count-independent either way.
    let wave_jobs = p
        .jobs
        .min(std::thread::available_parallelism().map_or(1, usize::from));
    let mut wave_ordinal = 0u64;
    // Wave-local scratch, reused across waves: after the first few waves
    // the settle loop allocates nothing proportional to the wave width.
    let mut wave: Vec<PrimId> = Vec::new();
    let mut outcomes: Vec<EvalOutcome> = Vec::new();
    let mut plans: Vec<CommitPlan> = Vec::new();
    while !queue.is_empty() {
        wave.clear();
        wave.extend(queue.drain(..));
        for pid in &wave {
            queued[pid.index()] = false;
        }
        // Commit in primitive-id order: canonical, and independent of
        // how last wave's commits happened to interleave enqueues.
        wave.sort_unstable();
        evaluate_wave(p, &wave, &*raw, &*eff, wave_jobs, &mut outcomes, &mut plans);
        for i in 0..wave.len() {
            let pid = wave[i];
            *evaluations += 1;
            if let Some(t) = p.trace {
                t.record(&TraceEvent::Evaluation {
                    case: p.case,
                    prim: pid.index() as u32,
                    name: &p.netlist.prim(pid).name,
                    ordinal: *evaluations,
                    queue_depth: wave.len() - i - 1 + queue.len(),
                });
            }
            if *evaluations > p.budget {
                // Everything not yet committed is still active: the rest
                // of this wave (the offender included) plus the queue.
                let active: Vec<String> = wave[i..]
                    .iter()
                    .chain(queue.iter())
                    .take(8)
                    .map(|&prim| p.netlist.prim(prim).name.clone())
                    .collect();
                return Err(VerifyError::Oscillation {
                    evaluations: *evaluations,
                    active,
                });
            }
            for idx in &outcomes[i].hazard_inputs {
                hazards.insert((pid, *idx));
            }
            let (out, new_eff) = match std::mem::replace(&mut plans[i], CommitPlan::Skip) {
                CommitPlan::Skip => continue,
                CommitPlan::Raw { out } => {
                    let new_state = outcomes[i].output.take().expect("Raw plan has an output");
                    raw.set_state(out.index(), new_state);
                    continue;
                }
                CommitPlan::RawEff { out, new_eff } => {
                    let new_state = outcomes[i]
                        .output
                        .take()
                        .expect("RawEff plan has an output");
                    raw.set_state(out.index(), new_state);
                    (out, new_eff)
                }
                CommitPlan::Wired { out } => {
                    // Wired-OR buses: this driver contributes one term;
                    // the signal's state is the worst-case OR of all
                    // drivers, recombined against the live contribution
                    // map (another driver may have committed this wave).
                    let new_state = outcomes[i].output.take().expect("Wired plan has an output");
                    wired.insert((out, pid), new_state);
                    let resolved: Vec<WaveRef> = p
                        .netlist
                        .drivers(out)
                        .iter()
                        .map(|d| {
                            wired.get(&(out, *d)).map_or_else(
                                || Waveform::constant(period, Value::Unknown).into(),
                                SignalState::resolved,
                            )
                        })
                        .collect();
                    let refs: Vec<&Waveform> = resolved.iter().map(WaveRef::as_wave).collect();
                    let new_state = SignalState::new(Waveform::combine_many(&refs, |vals| {
                        scald_logic::or_all(vals.iter().copied())
                    }));
                    if raw.state_at(out.index()) == new_state {
                        continue;
                    }
                    let new_eff =
                        override_state(p.overrides.get(&out).copied(), (&new_state).into());
                    raw.set_state(out.index(), new_state);
                    if eff.state_at(out.index()) == new_eff {
                        continue;
                    }
                    (out, new_eff)
                }
            };
            eff.set_state(out.index(), new_eff);
            *events += 1;
            if let Some(t) = p.trace {
                t.record(&TraceEvent::SignalSettled {
                    case: p.case,
                    signal: out.index() as u32,
                    name: &p.netlist.signal(out).name,
                    ordinal: *evaluations,
                });
            }
            for &fan in p.netlist.fanout(out) {
                if !queued[fan.index()] {
                    queued[fan.index()] = true;
                    queue.push_back(fan);
                }
            }
        }
        wave_ordinal += 1;
        if let Some(t) = p.trace {
            t.record(&TraceEvent::Wave {
                case: p.case,
                ordinal: wave_ordinal,
                size: wave.len(),
                queue_depth: queue.len(),
            });
        }
    }
    Ok(())
}

/// Evaluates every primitive of `wave` against the frozen pre-wave
/// state and plans its commit, fanning across a scoped worker pool when
/// `jobs` allows. `outcomes` and `plans` are caller-owned scratch,
/// cleared and refilled indexed like `wave` regardless of which worker
/// computed which entry — callers observe nothing but the wall-clock.
///
/// Workers claim contiguous *chunks* of the wave (not single slots) and
/// write results in place through per-chunk locks, so synchronization
/// and allocation are per chunk, not per primitive.
///
/// With a `cache`, each evaluation first checks the memo table: because
/// `evaluate` is a pure function of the primitive descriptor (interned
/// as the signature) and the input states (interned wave handles, skew,
/// eval string), a hit returns the identical outcome the kernel would
/// recompute — serving from cache is unobservable in every result.
fn evaluate_wave<R, E>(
    p: &WaveParams<'_>,
    wave: &[PrimId],
    raw: &R,
    eff: &E,
    jobs: usize,
    outcomes: &mut Vec<EvalOutcome>,
    plans: &mut Vec<CommitPlan>,
) where
    R: StateView + ?Sized,
    E: StateView + ?Sized,
{
    let netlist = p.netlist;
    let eval_one = |pid: PrimId| -> EvalOutcome {
        let prim = netlist.prim(pid);
        if let Some((cache, sigs)) = p.cache {
            if let Some(sig) = sigs[pid.index()] {
                let key = EvalCache::key_for(sig, prim, eff);
                if let Some(hit) = cache.lookup(&key) {
                    return hit;
                }
                let out = evaluate(netlist, prim, eff);
                cache.insert(key, &out);
                return out;
            }
        }
        evaluate(netlist, prim, eff)
    };
    outcomes.clear();
    plans.clear();
    let workers = jobs.min(wave.len());
    if workers <= 1 {
        for &pid in wave {
            let out = eval_one(pid);
            plans.push(plan_commit(p, pid, &out, raw, eff));
            outcomes.push(out);
        }
        return;
    }
    outcomes.resize_with(wave.len(), || EvalOutcome {
        output: None,
        hazard_inputs: Vec::new(),
    });
    plans.resize_with(wave.len(), || CommitPlan::Skip);
    // A few chunks per worker balances uneven evaluation costs without
    // per-primitive synchronization.
    type Slot<'w> = Mutex<(&'w [PrimId], &'w mut [EvalOutcome], &'w mut [CommitPlan])>;
    let chunk = wave.len().div_ceil(workers * 4).max(8);
    let slots: Vec<Slot<'_>> = wave
        .chunks(chunk)
        .zip(outcomes.chunks_mut(chunk))
        .zip(plans.chunks_mut(chunk))
        .map(|((w, o), pl)| Mutex::new((w, o, pl)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= slots.len() {
                    break;
                }
                let mut slot = slots[c].lock().expect("wave chunk poisoned");
                let (pids, outs, pls) = &mut *slot;
                for i in 0..pids.len() {
                    let out = eval_one(pids[i]);
                    pls[i] = plan_commit(p, pids[i], &out, raw, eff);
                    outs[i] = out;
                }
            });
        }
    });
}

/// Everything one case worker produced: the check results, its effort
/// counters, and the dirtied-cone overlays needed to install the case's
/// state back into the [`Verifier`].
struct CaseOutcome {
    violations: Vec<Violation>,
    events: u64,
    evaluations: u64,
    value_records: usize,
    /// Dirtied (index, state) pairs in index order.
    raw_overlay: Vec<(usize, SignalState)>,
    eff_overlay: Vec<(usize, SignalState)>,
    hazards: BTreeSet<(PrimId, usize)>,
    wired: BTreeMap<(SignalId, PrimId), SignalState>,
    overrides: BTreeMap<SignalId, Value>,
}

/// Settles one case against the shared settled base state (§2.7, §3.3.2).
///
/// This is the per-case unit of work for both the serial path and the
/// worker pool: it reads the base immutably, re-evaluates only the cone
/// the case's overrides dirty (on a [`ConeState`] copy-on-write overlay),
/// and runs all checks against the overlaid state. Because every input is
/// the same settled base and the worklist seeding order is fixed, the
/// outcome is a pure function of `(base, assigns)` — which is what makes
/// parallel case analysis byte-identical to serial. (An attached trace
/// sink observes the work but cannot influence it; `wave_jobs` changes
/// only who computes each wave entry, never any result.)
#[allow(clippy::too_many_arguments)]
fn settle_case(
    netlist: &Netlist,
    base_raw: &SoaState,
    base_eff: &SoaState,
    pinned: &[bool],
    base_hazards: &BTreeSet<(PrimId, usize)>,
    base_wired: &BTreeMap<(SignalId, PrimId), SignalState>,
    assigns: &[(SignalId, Value)],
    budget: u64,
    wave_jobs: usize,
    cache: Option<(&EvalCache, &[Option<u32>])>,
    trace: Option<(&dyn TraceSink, u32)>,
) -> Result<CaseOutcome, VerifyError> {
    let overrides: BTreeMap<SignalId, Value> = assigns.iter().copied().collect();
    let mut raw = ConeState::new(base_raw);
    let mut eff = ConeState::new(base_eff);
    let mut hazards = base_hazards.clone();
    let mut wired = base_wired.clone();
    let mut queue: VecDeque<PrimId> = VecDeque::new();
    let mut queued = vec![false; netlist.prims().len()];

    // Seed: apply the overrides (in SignalId order) and dirty their
    // fan-out cones.
    for &(sid, v) in assigns {
        let new_eff = override_state(Some(v), base_raw.get(sid.index()));
        if base_eff.get(sid.index()) != new_eff {
            eff.set(sid.index(), new_eff);
            for &pid in netlist.fanout(sid) {
                if !queued[pid.index()] {
                    queued[pid.index()] = true;
                    queue.push_back(pid);
                }
            }
        }
    }

    // The same wave loop as the base settle, on the overlay.
    let mut events = 0u64;
    let mut evaluations = 0u64;
    settle_waves(
        &WaveParams {
            netlist,
            pinned,
            overrides: &overrides,
            budget,
            jobs: wave_jobs,
            case: trace.map(|(_, c)| c),
            trace: trace.map(|(t, _)| t),
            cache,
        },
        WaveBooks {
            hazards: &mut hazards,
            wired: &mut wired,
            queue: &mut queue,
            queued: &mut queued,
            events: &mut events,
            evaluations: &mut evaluations,
        },
        &mut raw,
        &mut eff,
    )?;

    let hazard_list: Vec<(PrimId, usize)> = hazards.iter().copied().collect();
    let violations = run_all_checks(netlist, &eff, &hazard_list);
    let value_records = StorageReport::measure(netlist, &raw).value_records;
    Ok(CaseOutcome {
        violations,
        events,
        evaluations,
        value_records,
        raw_overlay: raw.into_overlay(),
        eff_overlay: eff.into_overlay(),
        hazards,
        wired,
        overrides,
    })
}

/// Checks that the interface signals of separately verified design
/// sections carry consistent assertions (§2.5.2): "after each section is
/// verified, SCALD checks to see that all interface signals have the same
/// timing assertions on them. If no section … has a timing error and if
/// all of the interface signals … have consistent assertions, then the
/// entire design must be free of timing errors."
///
/// Returns one message per inconsistency: a signal name appearing in two
/// sections with differing assertions (including asserted in one and
/// unasserted in the other).
#[must_use]
pub fn check_interfaces(sections: &[&Netlist]) -> Vec<String> {
    use scald_assertions::Assertion;
    // BTreeMap as structural hardening: `seen`'s order never escapes
    // today (problems follow section/signal input order), but a map that
    // feeds a user-facing listing must not depend on `RandomState`.
    let mut seen: BTreeMap<String, (usize, Option<Assertion>)> = BTreeMap::new();
    let mut problems = Vec::new();
    for (idx, section) in sections.iter().enumerate() {
        for (_, sig) in section.iter_signals() {
            match seen.get(&sig.name) {
                None => {
                    seen.insert(sig.name.clone(), (idx, sig.assertion.clone()));
                }
                Some((first_idx, first)) if *first != sig.assertion => {
                    let show = |a: &Option<Assertion>| {
                        a.as_ref()
                            .map_or_else(|| "(no assertion)".to_owned(), ToString::to_string)
                    };
                    problems.push(format!(
                        "interface signal {:?}: section {} asserts {}, \
                         section {} asserts {}",
                        sig.name,
                        first_idx + 1,
                        show(first),
                        idx + 1,
                        show(&sig.assertion)
                    ));
                }
                Some(_) => {}
            }
        }
    }
    problems
}
