//! The event-driven verification engine (§2.9).
//!
//! The engine initializes every signal from its assertion (or to unknown /
//! assumed-stable), then repeatedly re-evaluates primitives whose inputs
//! changed until all signals settle. Each output change is an *event*; the
//! fan-out index supplies the primitives to re-evaluate. After the fixed
//! point, the checker pass examines every constraint. Case analysis (§2.7)
//! re-uses the settled state: switching cases dirties only the overridden
//! signals' cones.

use scald_logic::Value;
use scald_netlist::{Netlist, PrimId, SignalId};
use scald_trace::{TraceEvent, TraceSink};
use scald_wave::Waveform;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::checkers::{run_all_checks, slack_report, CheckMargin};
use crate::eval::evaluate;
use crate::report::{CaseResult, EngineStats, Report, Violation};
use crate::state::SignalState;
use crate::storage::StorageReport;
use crate::view::ConeState;

/// One case for case analysis (§2.7.1): a set of `signal = 0/1`
/// assignments applied wherever the circuit would set the signal stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Case {
    assigns: Vec<(String, bool)>,
}

impl Case {
    /// An empty case (no overrides) — what a plain run uses.
    #[must_use]
    pub fn new() -> Case {
        Case::default()
    }

    /// Adds a `signal = value` assignment, e.g.
    /// `Case::new().assign("CONTROL SIGNAL", true)`.
    #[must_use]
    pub fn assign(mut self, signal: impl Into<String>, value: bool) -> Case {
        self.assigns.push((signal.into(), value));
        self
    }

    /// The assignments in this case.
    #[must_use]
    pub fn assignments(&self) -> &[(String, bool)] {
        &self.assigns
    }

    /// Case label for reports, e.g. `CONTROL SIGNAL = 1`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.assigns.is_empty() {
            "no case overrides".to_owned()
        } else {
            self.assigns
                .iter()
                .map(|(s, v)| format!("{s} = {}", u8::from(*v)))
                .collect::<Vec<_>>()
                .join("; ")
        }
    }
}

/// Errors raised while running the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The circuit failed to settle: a combinational loop (or model bug)
    /// kept generating events past the evaluation budget.
    Oscillation {
        /// How many primitive evaluations were performed before giving up.
        evaluations: u64,
        /// Names of some primitives still active.
        active: Vec<String>,
    },
    /// A case names a signal not present in the design.
    UnknownCaseSignal {
        /// The missing signal name.
        name: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Oscillation {
                evaluations,
                active,
            } => write!(
                f,
                "circuit did not settle after {evaluations} evaluations; \
                 still active: {}",
                active.join(", ")
            ),
            VerifyError::UnknownCaseSignal { name } => {
                write!(f, "case analysis names unknown signal {name:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Configures and builds a [`Verifier`]: the front door for everything
/// beyond a plain run — worker-pool size, oscillation budget, and an
/// observability [`TraceSink`].
///
/// [`Verifier::new`] is a shim over the all-defaults builder, so simple
/// callers never see this type.
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_trace::CounterSink;
/// use scald_verifier::VerifierBuilder;
/// use scald_wave::{DelayRange, Time};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let sink = Arc::new(CounterSink::new());
/// let mut v = VerifierBuilder::new(b.finish()?)
///     .jobs(2)
///     .trace(Arc::clone(&sink) as Arc<_>)
///     .build();
/// let result = v.run()?;
/// assert!(result.is_clean());
/// assert_eq!(sink.snapshot().evaluations, result.evaluations);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
#[must_use]
pub struct VerifierBuilder {
    jobs: Option<usize>,
    oscillation_budget: Option<u64>,
    trace: Option<Arc<dyn TraceSink>>,
    netlist: Option<Netlist>,
}

impl VerifierBuilder {
    /// Starts a builder for verifying `netlist`, with default worker
    /// count (available parallelism), default oscillation budget
    /// (256 evaluations per primitive, plus slack for tiny designs) and
    /// no tracing.
    pub fn new(netlist: Netlist) -> VerifierBuilder {
        VerifierBuilder {
            netlist: Some(netlist),
            ..VerifierBuilder::default()
        }
    }

    /// Sets the case-analysis worker-pool size (clamped to at least 1).
    /// [`Verifier::run_cases`] uses this; an explicit
    /// [`Verifier::run_cases_with_jobs`] call still wins.
    pub fn jobs(mut self, jobs: usize) -> VerifierBuilder {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the oscillation budget: the maximum primitive evaluations one
    /// settle pass may perform before the engine reports
    /// [`VerifyError::Oscillation`]. Lower it to fail fast on designs
    /// with suspected combinational loops; raise it for pathological but
    /// convergent circuits.
    pub fn oscillation_budget(mut self, evaluations: u64) -> VerifierBuilder {
        self.oscillation_budget = Some(evaluations.max(1));
        self
    }

    /// Attaches an observability sink. Every settle loop then emits
    /// [`TraceEvent`]s (per-primitive evaluations, per-signal settle
    /// ordinals, queue depths, per-case wall-clock/effort). Without a
    /// sink the engine pays only an `Option` check per evaluation.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> VerifierBuilder {
        self.trace = Some(sink);
        self
    }

    /// Builds the verifier and initializes all signal states per §2.9.
    ///
    /// # Panics
    ///
    /// Panics if the builder was obtained via `Default` instead of
    /// [`VerifierBuilder::new`] (there is no netlist to verify).
    #[must_use]
    pub fn build(self) -> Verifier {
        let netlist = self.netlist.expect("VerifierBuilder::new sets the netlist");
        let budget = self
            .oscillation_budget
            .unwrap_or_else(|| 256 * (netlist.prims().len() as u64 + 64));
        let mut v = Verifier::init(netlist);
        v.jobs = self.jobs.unwrap_or_else(default_jobs);
        v.budget = budget;
        v.trace = self.trace;
        v
    }
}

/// The SCALD Timing Verifier: simulates one clock period of the circuit
/// symbolically and checks every timing constraint (§2.1, §2.9).
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_verifier::Verifier;
/// use scald_wave::{DelayRange, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let mut v = Verifier::new(b.finish()?);
/// let result = v.run()?;
/// assert!(result.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Verifier {
    netlist: Netlist,
    /// Computed (pre-case-mapping) states.
    raw: Vec<SignalState>,
    /// Effective states seen by evaluation: raw with case overrides applied.
    eff: Vec<SignalState>,
    /// Signals whose state is fixed by an assertion (clocks, asserted or
    /// assumed-stable undriven signals) and never overwritten by a driver.
    pinned: Vec<bool>,
    queue: VecDeque<PrimId>,
    queued: Vec<bool>,
    overrides: HashMap<SignalId, Value>,
    hazards: BTreeSet<(PrimId, usize)>,
    /// Undriven, unasserted signals assumed always stable (§2.5) — the
    /// special cross-reference listing for the designer.
    assumed_stable: Vec<SignalId>,
    /// Driven signals whose clock assertion pins their value (§2.6 clock
    /// tuning): the driver's computed value is ignored.
    pinned_clock_drivers: Vec<SignalId>,
    /// Per-driver output states for wired-OR signals (§3.1, Fig 3-1's
    /// ECL bus): the signal's effective value is the worst-case OR of all
    /// contributions.
    wired_contributions: HashMap<(SignalId, PrimId), SignalState>,
    total_events: u64,
    total_evaluations: u64,
    /// Set by [`warm_start`](Self::warm_start): suppresses the
    /// enqueue-everything initial pass even when no evaluation has
    /// happened yet (a warm verifier whose dirty cone is empty must not
    /// re-evaluate the whole design).
    warmed: bool,
    /// Default worker-pool size for [`run_cases`](Self::run_cases).
    jobs: usize,
    /// Evaluation budget per settle pass before declaring oscillation.
    budget: u64,
    /// Observability sink; `None` keeps the hot loops branch-only.
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Verifier")
            .field("signals", &self.netlist.signals().len())
            .field("prims", &self.netlist.prims().len())
            .field("jobs", &self.jobs)
            .field("budget", &self.budget)
            .field("traced", &self.trace.is_some())
            .field("total_events", &self.total_events)
            .field("total_evaluations", &self.total_evaluations)
            .finish_non_exhaustive()
    }
}

impl Verifier {
    /// Creates a verifier with all defaults — a shim over
    /// [`VerifierBuilder`], which configures worker count, oscillation
    /// budget and tracing.
    #[must_use]
    pub fn new(netlist: Netlist) -> Verifier {
        VerifierBuilder::new(netlist).build()
    }

    /// Initializes all signal states per §2.9: asserted signals take
    /// their asserted values, undriven unasserted signals are assumed
    /// stable (and cross-referenced), everything else starts `U`.
    fn init(netlist: Netlist) -> Verifier {
        let period = netlist.config().timing.period;
        let timing = netlist.config().timing;
        let n = netlist.signals().len();
        let mut raw = Vec::with_capacity(n);
        let mut pinned = vec![false; n];
        let mut assumed_stable = Vec::new();
        let mut pinned_clock_drivers = Vec::new();

        for (sid, sig) in netlist.iter_signals() {
            let driven = netlist.driver(sid).is_some();
            let state = match &sig.assertion {
                Some(a) if a.kind.is_clock() => {
                    let (wave, skew) = a.to_state(&timing);
                    pinned[sid.index()] = true;
                    if driven {
                        pinned_clock_drivers.push(sid);
                    }
                    SignalState {
                        wave,
                        skew,
                        eval: None,
                    }
                }
                Some(a) => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        let (wave, skew) = a.to_state(&timing);
                        SignalState {
                            wave,
                            skew,
                            eval: None,
                        }
                    }
                }
                None => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        assumed_stable.push(sid);
                        SignalState::new(Waveform::constant(period, Value::Stable))
                    }
                }
            };
            raw.push(state);
        }

        let eff = raw.clone();
        let queued = vec![false; netlist.prims().len()];
        Verifier {
            netlist,
            raw,
            eff,
            pinned,
            queue: VecDeque::new(),
            queued,
            overrides: HashMap::new(),
            hazards: BTreeSet::new(),
            wired_contributions: HashMap::new(),
            assumed_stable,
            pinned_clock_drivers,
            total_events: 0,
            total_evaluations: 0,
            warmed: false,
            jobs: 1,
            budget: 0,
            trace: None,
        }
    }

    /// The netlist being verified.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The settled effective state of a signal (after [`run`](Self::run)).
    #[must_use]
    pub fn state(&self, id: SignalId) -> &SignalState {
        &self.eff[id.index()]
    }

    /// The fully resolved (skew-folded) waveform of a signal.
    #[must_use]
    pub fn resolved(&self, id: SignalId) -> Waveform {
        self.eff[id.index()].resolved()
    }

    /// Undriven, unasserted signals assumed always stable — the thesis'
    /// special cross-reference listing (§2.5).
    #[must_use]
    pub fn assumed_stable_signals(&self) -> &[SignalId] {
        &self.assumed_stable
    }

    /// Total events processed so far (an event = an output given a new
    /// value, §3.3.2).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total primitive evaluations performed so far.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.total_evaluations
    }

    fn apply_override(&self, sid: SignalId, state: &SignalState) -> SignalState {
        override_state(self.overrides.get(&sid).copied(), state)
    }

    fn enqueue(&mut self, pid: PrimId) {
        if !self.queued[pid.index()] {
            self.queued[pid.index()] = true;
            self.queue.push_back(pid);
        }
    }

    fn enqueue_fanout(&mut self, sid: SignalId) {
        let fanout: Vec<PrimId> = self.netlist.fanout(sid).to_vec();
        for pid in fanout {
            self.enqueue(pid);
        }
    }

    /// Runs the worklist to a fixed point; returns events processed.
    fn settle(&mut self) -> Result<(u64, u64), VerifyError> {
        let budget = self.budget;
        let mut events = 0u64;
        let mut evaluations = 0u64;
        while let Some(pid) = self.queue.pop_front() {
            self.queued[pid.index()] = false;
            evaluations += 1;
            if let Some(trace) = &self.trace {
                trace.record(&TraceEvent::Evaluation {
                    case: None,
                    prim: pid.index() as u32,
                    name: &self.netlist.prim(pid).name,
                    ordinal: evaluations,
                    queue_depth: self.queue.len(),
                });
            }
            if evaluations > budget {
                // The just-popped primitive is still active too — in a
                // tight ring the queue can be empty right after the pop.
                let active: Vec<String> = std::iter::once(pid)
                    .chain(self.queue.iter().copied())
                    .take(8)
                    .map(|p| self.netlist.prim(p).name.clone())
                    .collect();
                self.total_events += events;
                self.total_evaluations += evaluations;
                return Err(VerifyError::Oscillation {
                    evaluations,
                    active,
                });
            }
            let prim = self.netlist.prim(pid);
            let outcome = evaluate(&self.netlist, prim, self.eff.as_slice());
            for idx in &outcome.hazard_inputs {
                self.hazards.insert((pid, *idx));
            }
            if let (Some(new_state), Some(out)) = (outcome.output, prim.output) {
                if self.pinned[out.index()] {
                    continue; // asserted clocks keep their asserted value
                }
                // Wired-OR buses: this driver contributes one term; the
                // signal's state is the worst-case OR of all drivers.
                let new_state = if self.netlist.drivers(out).len() > 1 {
                    self.wired_contributions.insert((out, pid), new_state);
                    let period = self.netlist.config().timing.period;
                    let resolved: Vec<Waveform> = self
                        .netlist
                        .drivers(out)
                        .iter()
                        .map(|d| {
                            self.wired_contributions.get(&(out, *d)).map_or_else(
                                || Waveform::constant(period, Value::Unknown),
                                SignalState::resolved,
                            )
                        })
                        .collect();
                    let refs: Vec<&Waveform> = resolved.iter().collect();
                    SignalState::new(Waveform::combine_many(&refs, |vals| {
                        scald_logic::or_all(vals.iter().copied())
                    }))
                } else {
                    new_state
                };
                if self.raw[out.index()] != new_state {
                    self.raw[out.index()] = new_state;
                    let eff = self.apply_override(out, &self.raw[out.index()]);
                    if self.eff[out.index()] != eff {
                        self.eff[out.index()] = eff;
                        events += 1;
                        if let Some(trace) = &self.trace {
                            trace.record(&TraceEvent::SignalSettled {
                                case: None,
                                signal: out.index() as u32,
                                name: &self.netlist.signal(out).name,
                                ordinal: evaluations,
                            });
                        }
                        self.enqueue_fanout(out);
                    }
                }
            }
        }
        self.total_events += events;
        self.total_evaluations += evaluations;
        Ok((events, evaluations))
    }

    /// Applies a case's overrides, dirtying the affected signals' fan-out.
    fn apply_case(&mut self, case: &Case) -> Result<(), VerifyError> {
        let mut new_overrides = HashMap::new();
        for (name, v) in case.assignments() {
            let sid = self
                .netlist
                .signal_by_name(name)
                .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
            new_overrides.insert(sid, if *v { Value::One } else { Value::Zero });
        }
        let affected: BTreeSet<SignalId> = self
            .overrides
            .keys()
            .chain(new_overrides.keys())
            .copied()
            .collect();
        self.overrides = new_overrides;
        for sid in affected {
            let eff = self.apply_override(sid, &self.raw[sid.index()]);
            if self.eff[sid.index()] != eff {
                self.eff[sid.index()] = eff;
                self.enqueue_fanout(sid);
            }
        }
        Ok(())
    }

    /// Settles the base (no-override) fixed point and returns the
    /// `(events, evaluations)` this settle took. On a fresh verifier this
    /// is the full evaluation of §2.9; on a [warm-started](Self::warm_start)
    /// one only the seeded dirty cone is processed.
    ///
    /// A verifier in this state is the correct `prior` for a later
    /// [`warm_start`](Self::warm_start): its signal states, hazard set and
    /// wired-OR contributions describe the base fixed point, not some
    /// case's overlay (which [`run_cases`](Self::run_cases) installs when
    /// it finishes). `scald-incr` clones the verifier here to snapshot a
    /// session checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Oscillation`] if the circuit does not
    /// settle.
    pub fn settle_base(&mut self) -> Result<(u64, u64), VerifyError> {
        let first_run = self.total_evaluations == 0 && !self.warmed;
        self.apply_case(&Case::new())?;
        if first_run {
            let all: Vec<PrimId> = self.netlist.iter_prims().map(|(p, _)| p).collect();
            for pid in all {
                self.enqueue(pid);
            }
        }
        self.settle()
    }

    /// Seeds this (freshly built, not yet run) verifier from `prior`'s
    /// settled base fixed point, so the next settle only re-evaluates the
    /// structurally dirty cone. The caller asserts, via the maps, which
    /// parts of the design survived the edit:
    ///
    /// * `signal_map` — `(self, prior)` id pairs of signals whose
    ///   definition (width, assertion, wire delay, wired-OR flag, driver
    ///   set) is unchanged. Their settled states are copied over; every
    ///   other signal keeps its §2.9 init value until re-derived.
    /// * `prim_map` — `(self, prior)` id pairs of unchanged primitives.
    ///   Their recorded hazards and wired-OR contributions carry over.
    /// * `seeds` — the dirty frontier to enqueue: edited primitives, the
    ///   fan-out of dirtied signals, *and the drivers of dirtied signals*
    ///   (a dirtied signal's value must be recomputed even when its
    ///   driver itself is clean). Propagation handles everything
    ///   transitively downstream.
    ///
    /// `prior` must be at its settled base — i.e. right after
    /// [`settle_base`](Self::settle_base), before any case overlay was
    /// installed. With correct maps the subsequent
    /// [`settle_base`](Self::settle_base)/[`run_cases`](Self::run_cases)
    /// reach a state identical to a cold run of the edited design
    /// (`scald-incr` property-tests this; see `Report::strip_effort` for
    /// the one caveat, effort counters). Exactness relies on hazard sets
    /// being trajectory-independent, which holds for connection-attribute
    /// directives (`&H` on a pin); designs relying on *propagated*
    /// evaluation directives through edited regions should re-verify
    /// cold.
    pub fn warm_start(
        &mut self,
        prior: &Verifier,
        signal_map: &[(SignalId, SignalId)],
        prim_map: &[(PrimId, PrimId)],
        seeds: &[PrimId],
    ) {
        let mut copied = 0usize;
        for &(new, old) in signal_map {
            if self.pinned[new.index()] {
                continue; // init already pinned it to its asserted value
            }
            self.raw[new.index()] = prior.raw[old.index()].clone();
            self.eff[new.index()] = self.raw[new.index()].clone();
            copied += 1;
        }
        let prim_back: HashMap<PrimId, PrimId> =
            prim_map.iter().map(|&(new, old)| (old, new)).collect();
        let sig_back: HashMap<SignalId, SignalId> =
            signal_map.iter().map(|&(new, old)| (old, new)).collect();
        for &(pid, idx) in &prior.hazards {
            if let Some(&np) = prim_back.get(&pid) {
                self.hazards.insert((np, idx));
            }
        }
        for (&(sid, pid), st) in &prior.wired_contributions {
            if let (Some(&ns), Some(&np)) = (sig_back.get(&sid), prim_back.get(&pid)) {
                if self.netlist.drivers(ns).contains(&np) {
                    self.wired_contributions.insert((ns, np), st.clone());
                }
            }
        }
        for &pid in seeds {
            self.enqueue(pid);
        }
        self.warmed = true;
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::WarmStart {
                copied_signals: copied,
                seeded_prims: self.queue.len(),
                prims: self.netlist.prims().len(),
            });
        }
    }

    /// Verifies the circuit for a single case with no overrides.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Oscillation`] if the circuit does not settle
    /// (e.g. an unbroken combinational loop).
    pub fn run(&mut self) -> Result<CaseResult, VerifyError> {
        let results = self.run_cases(&[Case::new()])?;
        Ok(results.into_iter().next().expect("one case requested"))
    }

    /// Verifies the circuit for each case (§2.7), fanning the per-case
    /// incremental re-evaluations across a worker pool sized to
    /// [`std::thread::available_parallelism`]. The base (no-override)
    /// state is settled once — the full evaluation of §2.9 — and each
    /// case then re-evaluates only the cone its overrides dirty
    /// (§3.3.2), on its own copy-on-write overlay of the base.
    ///
    /// Results are merged in input-case order and are byte-identical to
    /// [`run_cases_serial`](Self::run_cases_serial): every case is
    /// computed by the same deterministic procedure from the same settled
    /// base, so worker scheduling cannot affect any result.
    ///
    /// # Errors
    ///
    /// Returns an error if a case names an unknown signal or the circuit
    /// fails to settle.
    pub fn run_cases(&mut self, cases: &[Case]) -> Result<Vec<CaseResult>, VerifyError> {
        self.run_cases_with_jobs(cases, self.jobs)
    }

    /// [`run_cases`](Self::run_cases) restricted to one worker: the
    /// reference serial path. Produces byte-identical results; kept
    /// public so callers (and the cross-check tests) can compare.
    ///
    /// # Errors
    ///
    /// Same as [`run_cases`](Self::run_cases).
    pub fn run_cases_serial(&mut self, cases: &[Case]) -> Result<Vec<CaseResult>, VerifyError> {
        self.run_cases_with_jobs(cases, 1)
    }

    /// [`run_cases`](Self::run_cases) with an explicit worker count
    /// (clamped to at least 1; the pool never spawns more workers than
    /// cases). The `--jobs` flag of `scald-tv` lands here.
    ///
    /// # Errors
    ///
    /// Same as [`run_cases`](Self::run_cases). On an error the
    /// first failing case (by input order) is reported; the event and
    /// evaluation totals still count whatever work completed.
    pub fn run_cases_with_jobs(
        &mut self,
        cases: &[Case],
        jobs: usize,
    ) -> Result<Vec<CaseResult>, VerifyError> {
        if cases.is_empty() {
            return Ok(Vec::new());
        }
        let run_started = Instant::now();
        let effort_before = (self.total_events, self.total_evaluations);
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::RunStart {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: cases.len(),
                jobs: jobs.max(1).min(cases.len()),
            });
        }
        // Resolve every case's signal names up front, so an unknown name
        // errors deterministically before any evaluation runs.
        let mut resolved: Vec<Vec<(SignalId, Value)>> = Vec::with_capacity(cases.len());
        for case in cases {
            let mut assigns = Vec::with_capacity(case.assignments().len());
            for (name, v) in case.assignments() {
                let sid = self
                    .netlist
                    .signal_by_name(name)
                    .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
                assigns.push((sid, if *v { Value::One } else { Value::Zero }));
            }
            // Deterministic seeding order for the worker's worklist.
            assigns.sort_by_key(|(sid, _)| sid.index());
            resolved.push(assigns);
        }

        // Establish (or return to) the settled base: no overrides.
        let first_run = self.total_evaluations == 0 && !self.warmed;
        self.apply_case(&Case::new())?;
        if first_run {
            // Initial pass evaluates everything (§2.9).
            let all: Vec<PrimId> = self.netlist.iter_prims().map(|(p, _)| p).collect();
            for pid in all {
                self.enqueue(pid);
            }
        }
        let (base_events, base_evaluations) = self.settle()?;

        // Fan the cases across the pool. Each worker repeatedly claims
        // the next unclaimed case index and settles it against the shared
        // immutable base; per-case effort is summed into the totals with
        // atomics as workers finish.
        let jobs = jobs.max(1).min(cases.len());
        let netlist = &self.netlist;
        let base_raw: &[SignalState] = &self.raw;
        let base_eff: &[SignalState] = &self.eff;
        let pinned: &[bool] = &self.pinned;
        let base_hazards = &self.hazards;
        let base_wired = &self.wired_contributions;
        let budget = self.budget;
        let trace: Option<&dyn TraceSink> = self.trace.as_deref();
        let labels: Vec<String> = cases.iter().map(Case::label).collect();
        let events_total = AtomicU64::new(0);
        let evaluations_total = AtomicU64::new(0);
        let work = |i: usize| {
            if let Some(t) = trace {
                t.record(&TraceEvent::CaseStart {
                    case: i as u32,
                    label: &labels[i],
                });
            }
            let case_started = Instant::now();
            let outcome = settle_case(
                netlist,
                base_raw,
                base_eff,
                pinned,
                base_hazards,
                base_wired,
                &resolved[i],
                budget,
                trace.map(|t| (t, i as u32)),
            );
            if let Ok(o) = &outcome {
                events_total.fetch_add(o.events, Ordering::Relaxed);
                evaluations_total.fetch_add(o.evaluations, Ordering::Relaxed);
                if let Some(t) = trace {
                    t.record(&TraceEvent::CaseEnd {
                        case: i as u32,
                        wall_nanos: u64::try_from(case_started.elapsed().as_nanos())
                            .unwrap_or(u64::MAX),
                        events: o.events,
                        evaluations: o.evaluations,
                        violations: o.violations.len(),
                    });
                }
            }
            outcome
        };
        let mut outcomes: Vec<Option<Result<CaseOutcome, VerifyError>>> = if jobs == 1 {
            (0..cases.len()).map(|i| Some(work(i))).collect()
        } else {
            let slots: Vec<Mutex<Option<Result<CaseOutcome, VerifyError>>>> =
                (0..cases.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..jobs {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cases.len() {
                            break;
                        }
                        let outcome = work(i);
                        *slots[i].lock().expect("case slot poisoned") = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("case slot poisoned"))
                .collect()
        };
        self.total_events += events_total.into_inner();
        self.total_evaluations += evaluations_total.into_inner();

        // Merge in input-case order; the first error (by case index) wins.
        let mut results = Vec::with_capacity(cases.len());
        let mut last: Option<CaseOutcome> = None;
        for (i, slot) in outcomes.iter_mut().enumerate() {
            let mut outcome = slot.take().expect("worker filled every case slot")?;
            results.push(CaseResult {
                name: format!("case {}: {}", i + 1, cases[i].label()),
                violations: std::mem::take(&mut outcome.violations),
                events: outcome.events + if i == 0 && first_run { base_events } else { 0 },
                evaluations: outcome.evaluations
                    + if i == 0 && first_run {
                        base_evaluations
                    } else {
                        0
                    },
                value_records: outcome.value_records,
            });
            last = Some(outcome);
        }

        // Install the last case's state so `state`/`resolved`/listings
        // reflect it, exactly as the serial path left things.
        let last = last.expect("cases is non-empty");
        for (idx, st) in last.raw_overlay {
            self.raw[idx] = st;
        }
        for (idx, st) in last.eff_overlay {
            self.eff[idx] = st;
        }
        self.overrides = last.overrides;
        self.hazards = last.hazards;
        self.wired_contributions = last.wired;
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::RunEnd {
                wall_nanos: u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                events: self.total_events - effort_before.0,
                evaluations: self.total_evaluations - effort_before.1,
            });
        }
        Ok(results)
    }

    /// Runs all checks against the current settled state without further
    /// evaluation. Useful for inspecting intermediate cases.
    #[must_use]
    pub fn check_now(&self) -> Vec<Violation> {
        let hazards: Vec<(PrimId, usize)> = self.hazards.iter().copied().collect();
        run_all_checks(&self.netlist, self.eff.as_slice(), &hazards)
    }

    /// The signal-value summary listing of Fig 3-10: one line per signal
    /// with its value over the cycle.
    #[must_use]
    pub fn summary_listing(&self) -> String {
        crate::report::format_summary(&self.sorted_waves())
    }

    /// The cross-reference listing of undriven, unasserted signals the
    /// verifier assumed stable (§2.5).
    #[must_use]
    pub fn xref_listing(&self) -> String {
        crate::report::format_xref(&self.assumed_stable_names(), &self.clock_driver_notes())
    }

    /// Storage accounting in the categories of Table 3-3.
    #[must_use]
    pub fn storage_report(&self) -> StorageReport {
        StorageReport::measure(&self.netlist, self.raw.as_slice())
    }

    /// Timing margins of every checker against the current settled state:
    /// the slack view (worst margins first). Negative slack corresponds to
    /// a reported violation.
    #[must_use]
    pub fn slack_report(&self) -> Vec<CheckMargin> {
        slack_report(&self.netlist, self.eff.as_slice())
    }

    /// An ASCII timing diagram of all signals (sorted by name), `columns`
    /// buckets wide — the visual companion to
    /// [`summary_listing`](Self::summary_listing).
    #[must_use]
    pub fn timing_diagram(&self, columns: usize) -> String {
        crate::diagram::render_diagram(&self.sorted_waves(), columns)
    }

    /// Every signal's resolved waveform against the current settled
    /// state, sorted by full name — the rows behind the summary listing
    /// and the timing diagram.
    fn sorted_waves(&self) -> Vec<(String, Waveform)> {
        let mut rows: Vec<(String, Waveform)> = self
            .netlist
            .iter_signals()
            .map(|(sid, sig)| (sig.full_name(), self.resolved(sid)))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    fn assumed_stable_names(&self) -> Vec<String> {
        self.assumed_stable
            .iter()
            .map(|sid| self.netlist.signal(*sid).name.clone())
            .collect()
    }

    fn clock_driver_notes(&self) -> Vec<String> {
        self.pinned_clock_drivers
            .iter()
            .map(|sid| self.netlist.signal(*sid).full_name())
            .collect()
    }

    /// Bundles everything this verifier knows about its last run into one
    /// [`Report`]: the per-case results, engine statistics, the slack and
    /// storage views, the assumed-stable cross-reference and every settled
    /// waveform. `design` labels the report (usually the source path);
    /// `results` are what [`run_cases`](Self::run_cases) returned.
    ///
    /// The caller may fill in [`EngineStats::verify_wall`] afterwards if
    /// it measured the run.
    #[must_use]
    pub fn report(&self, design: impl Into<String>, results: &[CaseResult]) -> Report {
        Report {
            design: design.into(),
            cases: results.to_vec(),
            engine: EngineStats {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: results.len(),
                jobs: self.jobs,
                events: self.total_events,
                evaluations: self.total_evaluations,
                verify_wall: None,
            },
            slack: self.slack_report(),
            storage: self.storage_report(),
            assumed_stable: self.assumed_stable_names(),
            clock_driver_notes: self.clock_driver_notes(),
            waves: self.sorted_waves(),
            period: self.netlist.config().timing.period,
        }
    }
}

/// The default worker count for [`Verifier::run_cases`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies a case override to a computed state: the override replaces the
/// signal's value wherever the circuit would leave it merely *stable*
/// (§2.7.1) — asserted changing windows and computed constants win.
fn override_state(over: Option<Value>, state: &SignalState) -> SignalState {
    match over {
        None => state.clone(),
        Some(v) => SignalState {
            wave: state.wave.map(|x| if x == Value::Stable { v } else { x }),
            skew: state.skew,
            eval: state.eval.clone(),
        },
    }
}

/// Everything one case worker produced: the check results, its effort
/// counters, and the dirtied-cone overlays needed to install the case's
/// state back into the [`Verifier`].
struct CaseOutcome {
    violations: Vec<Violation>,
    events: u64,
    evaluations: u64,
    value_records: usize,
    raw_overlay: HashMap<usize, SignalState>,
    eff_overlay: HashMap<usize, SignalState>,
    hazards: BTreeSet<(PrimId, usize)>,
    wired: HashMap<(SignalId, PrimId), SignalState>,
    overrides: HashMap<SignalId, Value>,
}

/// Settles one case against the shared settled base state (§2.7, §3.3.2).
///
/// This is the per-case unit of work for both the serial path and the
/// worker pool: it reads the base immutably, re-evaluates only the cone
/// the case's overrides dirty (on a [`ConeState`] copy-on-write overlay),
/// and runs all checks against the overlaid state. Because every input is
/// the same settled base and the worklist seeding order is fixed, the
/// outcome is a pure function of `(base, assigns)` — which is what makes
/// parallel case analysis byte-identical to serial. (An attached trace
/// sink observes the work but cannot influence it.)
#[allow(clippy::too_many_arguments)]
fn settle_case(
    netlist: &Netlist,
    base_raw: &[SignalState],
    base_eff: &[SignalState],
    pinned: &[bool],
    base_hazards: &BTreeSet<(PrimId, usize)>,
    base_wired: &HashMap<(SignalId, PrimId), SignalState>,
    assigns: &[(SignalId, Value)],
    budget: u64,
    trace: Option<(&dyn TraceSink, u32)>,
) -> Result<CaseOutcome, VerifyError> {
    let overrides: HashMap<SignalId, Value> = assigns.iter().copied().collect();
    let mut raw = ConeState::new(base_raw);
    let mut eff = ConeState::new(base_eff);
    let mut hazards = base_hazards.clone();
    let mut wired = base_wired.clone();
    let mut queue: VecDeque<PrimId> = VecDeque::new();
    let mut queued = vec![false; netlist.prims().len()];
    let enqueue = |pid: PrimId, queue: &mut VecDeque<PrimId>, queued: &mut Vec<bool>| {
        if !queued[pid.index()] {
            queued[pid.index()] = true;
            queue.push_back(pid);
        }
    };

    // Seed: apply the overrides (in SignalId order) and dirty their
    // fan-out cones.
    use crate::view::StateView;
    for &(sid, v) in assigns {
        let new_eff = override_state(Some(v), &base_raw[sid.index()]);
        if new_eff != base_eff[sid.index()] {
            eff.set(sid.index(), new_eff);
            for &pid in netlist.fanout(sid) {
                enqueue(pid, &mut queue, &mut queued);
            }
        }
    }

    // The same worklist loop as the base `settle`, on the overlay.
    let mut events = 0u64;
    let mut evaluations = 0u64;
    while let Some(pid) = queue.pop_front() {
        queued[pid.index()] = false;
        evaluations += 1;
        if let Some((t, case)) = trace {
            t.record(&TraceEvent::Evaluation {
                case: Some(case),
                prim: pid.index() as u32,
                name: &netlist.prim(pid).name,
                ordinal: evaluations,
                queue_depth: queue.len(),
            });
        }
        if evaluations > budget {
            let active: Vec<String> = std::iter::once(pid)
                .chain(queue.iter().copied())
                .take(8)
                .map(|p| netlist.prim(p).name.clone())
                .collect();
            return Err(VerifyError::Oscillation {
                evaluations,
                active,
            });
        }
        let prim = netlist.prim(pid);
        let outcome = evaluate(netlist, prim, &eff);
        for idx in &outcome.hazard_inputs {
            hazards.insert((pid, *idx));
        }
        if let (Some(new_state), Some(out)) = (outcome.output, prim.output) {
            if pinned[out.index()] {
                continue; // asserted clocks keep their asserted value
            }
            // Wired-OR buses: recombine all drivers' contributions.
            let new_state = if netlist.drivers(out).len() > 1 {
                wired.insert((out, pid), new_state);
                let period = netlist.config().timing.period;
                let resolved: Vec<Waveform> = netlist
                    .drivers(out)
                    .iter()
                    .map(|d| {
                        wired.get(&(out, *d)).map_or_else(
                            || Waveform::constant(period, Value::Unknown),
                            SignalState::resolved,
                        )
                    })
                    .collect();
                let refs: Vec<&Waveform> = resolved.iter().collect();
                SignalState::new(Waveform::combine_many(&refs, |vals| {
                    scald_logic::or_all(vals.iter().copied())
                }))
            } else {
                new_state
            };
            if *raw.state_at(out.index()) != new_state {
                let new_eff = override_state(overrides.get(&out).copied(), &new_state);
                raw.set(out.index(), new_state);
                if *eff.state_at(out.index()) != new_eff {
                    eff.set(out.index(), new_eff);
                    events += 1;
                    if let Some((t, case)) = trace {
                        t.record(&TraceEvent::SignalSettled {
                            case: Some(case),
                            signal: out.index() as u32,
                            name: &netlist.signal(out).name,
                            ordinal: evaluations,
                        });
                    }
                    for &fan in netlist.fanout(out) {
                        enqueue(fan, &mut queue, &mut queued);
                    }
                }
            }
        }
    }

    let hazard_list: Vec<(PrimId, usize)> = hazards.iter().copied().collect();
    let violations = run_all_checks(netlist, &eff, &hazard_list);
    let value_records = StorageReport::measure(netlist, &raw).value_records;
    Ok(CaseOutcome {
        violations,
        events,
        evaluations,
        value_records,
        raw_overlay: raw.into_overlay(),
        eff_overlay: eff.into_overlay(),
        hazards,
        wired,
        overrides,
    })
}

/// Checks that the interface signals of separately verified design
/// sections carry consistent assertions (§2.5.2): "after each section is
/// verified, SCALD checks to see that all interface signals have the same
/// timing assertions on them. If no section … has a timing error and if
/// all of the interface signals … have consistent assertions, then the
/// entire design must be free of timing errors."
///
/// Returns one message per inconsistency: a signal name appearing in two
/// sections with differing assertions (including asserted in one and
/// unasserted in the other).
#[must_use]
pub fn check_interfaces(sections: &[&Netlist]) -> Vec<String> {
    use scald_assertions::Assertion;
    let mut seen: HashMap<String, (usize, Option<Assertion>)> = HashMap::new();
    let mut problems = Vec::new();
    for (idx, section) in sections.iter().enumerate() {
        for (_, sig) in section.iter_signals() {
            match seen.get(&sig.name) {
                None => {
                    seen.insert(sig.name.clone(), (idx, sig.assertion.clone()));
                }
                Some((first_idx, first)) if *first != sig.assertion => {
                    let show = |a: &Option<Assertion>| {
                        a.as_ref()
                            .map_or_else(|| "(no assertion)".to_owned(), ToString::to_string)
                    };
                    problems.push(format!(
                        "interface signal {:?}: section {} asserts {}, \
                         section {} asserts {}",
                        sig.name,
                        first_idx + 1,
                        show(first),
                        idx + 1,
                        show(&sig.assertion)
                    ));
                }
                Some(_) => {}
            }
        }
    }
    problems
}
