//! The event-driven verification engine (§2.9).
//!
//! The engine initializes every signal from its assertion (or to unknown /
//! assumed-stable), then repeatedly re-evaluates primitives whose inputs
//! changed until all signals settle. Each output change is an *event*; the
//! fan-out index supplies the primitives to re-evaluate. After the fixed
//! point, the checker pass examines every constraint. Case analysis (§2.7)
//! re-uses the settled state: switching cases dirties only the overridden
//! signals' cones.
//!
//! Settling is *level-synchronized*: the worklist is drained into a
//! deduplicated wave, every primitive of the wave is evaluated against
//! the frozen pre-wave state (concurrently when the jobs budget allows),
//! and the results are committed on one thread in primitive-id order.
//! Because each wave reads only state committed by previous waves,
//! in-wave evaluation order is unobservable — waveforms, violation
//! lists, report JSON and trace streams are byte-identical for every
//! worker count (DESIGN.md § "The wave engine";
//! `tests/parallel_settle.rs` proves it over seeded designs).

use scald_logic::Value;
use scald_netlist::{Netlist, PrimId, SignalId};
use scald_trace::{TraceEvent, TraceSink};
use scald_wave::{DelayCorner, WaveRef, Waveform};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::cache::EvalCache;
use crate::caseset::CaseSet;
use crate::checkers::{
    run_all_checks, run_checks_cached, slack_report, CheckCache, CheckMargin, CheckMemo,
};
use crate::eval::{evaluate, EvalOutcome};
use crate::report::{CaseResult, EngineStats, Report, Violation};
use crate::state::SignalState;
use crate::storage::StorageReport;
use crate::view::{ConeState, SoaState, StateRef, StateStore, StateView};

/// One case for case analysis (§2.7.1): a set of `signal = 0/1`
/// assignments applied wherever the circuit would set the signal
/// stable, optionally evaluated at a non-default [`DelayCorner`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Case {
    assigns: Vec<(String, bool)>,
    corner: DelayCorner,
}

impl Case {
    /// An empty case (no overrides) — what a plain run uses.
    #[must_use]
    pub fn new() -> Case {
        Case::default()
    }

    /// Adds a `signal = value` assignment, e.g.
    /// `Case::new().assign("CONTROL SIGNAL", true)`.
    #[must_use]
    pub fn assign(mut self, signal: impl Into<String>, value: bool) -> Case {
        self.assigns.push((signal.into(), value));
        self
    }

    /// Sets the delay corner every primitive delay is evaluated at for
    /// this case. The default, [`DelayCorner::Worst`], keeps the full
    /// `[min, max]` ranges (the thesis' value-independent analysis); a
    /// point corner re-settles the whole design at that corner.
    #[must_use]
    pub fn corner(mut self, corner: DelayCorner) -> Case {
        self.corner = corner;
        self
    }

    /// The assignments in this case.
    #[must_use]
    pub fn assignments(&self) -> &[(String, bool)] {
        &self.assigns
    }

    /// The delay corner this case is evaluated at.
    #[must_use]
    pub fn delay_corner(&self) -> DelayCorner {
        self.corner
    }

    /// Case label for reports, e.g. `CONTROL SIGNAL = 1` or
    /// `corner=min; MODE = 0`. A non-default corner always prefixes the
    /// label, so corner cases stay distinguishable everywhere a label
    /// travels (reports, traces, incremental-session design hashes).
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.corner != DelayCorner::Worst {
            parts.push(format!("corner={}", self.corner));
        }
        parts.extend(
            self.assigns
                .iter()
                .map(|(s, v)| format!("{s} = {}", u8::from(*v))),
        );
        if parts.is_empty() {
            "no case overrides".to_owned()
        } else {
            parts.join("; ")
        }
    }
}

/// Errors raised while running the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The circuit failed to settle: a combinational loop (or model bug)
    /// kept generating events past the evaluation budget.
    Oscillation {
        /// How many primitive evaluations were performed before giving up.
        evaluations: u64,
        /// Names of some primitives still active.
        active: Vec<String>,
    },
    /// A case names a signal not present in the design.
    UnknownCaseSignal {
        /// The missing signal name.
        name: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Oscillation {
                evaluations,
                active,
            } => write!(
                f,
                "circuit did not settle after {evaluations} evaluations; \
                 still active: {}",
                active.join(", ")
            ),
            VerifyError::UnknownCaseSignal { name } => {
                write!(f, "case analysis names unknown signal {name:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Error of [`RunOutcome::try_sole`]: the run analysed more than one
/// case, so there is no single result to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiCaseError {
    /// How many cases the run analysed.
    pub cases: usize,
}

impl fmt::Display for MultiCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected a single-case run, but {} cases were analysed",
            self.cases
        )
    }
}

impl std::error::Error for MultiCaseError {}

/// Options for one [`Verifier::run`]: the cases to analyse, an optional
/// per-run worker override, the case-scheduling strategy, and whether
/// to checkpoint the settled base. The default (`RunOptions::new()`)
/// verifies the single no-override base case.
///
/// # Examples
///
/// ```ignore
/// let outcome = verifier.run(
///     &RunOptions::new()
///         .cases(CaseSet::exhaustive(["MODE0", "MODE1"]))
///         .jobs(4)
///         .checkpoint(CheckpointPolicy::SettledBase),
/// )?;
/// ```
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct RunOptions {
    cases: CaseSet,
    jobs: Option<usize>,
    checkpoint: CheckpointPolicy,
    strategy: CaseStrategy,
}

impl RunOptions {
    /// Options for a plain single-case (no-override) run.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Sets the cases to analyse (§2.7), replacing any set before —
    /// usually a [`CaseSet`] built with its sweep constructors; a plain
    /// `Vec<Case>` still converts via the deprecated compatibility
    /// shim. An empty set means "just the base case": the outcome then
    /// holds one [`CaseResult`] with no overrides.
    pub fn cases(mut self, cases: impl Into<CaseSet>) -> RunOptions {
        self.cases = cases.into();
        self
    }

    /// Adds one case to the analysis.
    pub fn case(mut self, case: Case) -> RunOptions {
        self.cases.push(case);
        self
    }

    /// Sets the case-scheduling strategy; see [`CaseStrategy`]. Every
    /// strategy produces byte-identical per-case results — this knob
    /// only trades settle effort for scheduling overhead.
    pub fn strategy(mut self, strategy: CaseStrategy) -> RunOptions {
        self.strategy = strategy;
        self
    }

    /// Overrides the verifier's worker budget for this run only (clamped
    /// to at least 1). The budget covers case fan-out *and* intra-settle
    /// wave evaluation — see [`VerifierBuilder::jobs`]. Results are
    /// byte-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> RunOptions {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the checkpoint policy; see [`CheckpointPolicy`].
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> RunOptions {
        self.checkpoint = policy;
        self
    }
}

/// How [`Verifier::run`] schedules a multi-case analysis. Every
/// strategy yields byte-identical per-case violations, waveforms and
/// value-record counts; only effort counters (events/evaluations per
/// case, prefix totals) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaseStrategy {
    /// Factor shared work through the case tree when the run's cases
    /// actually share assignment prefixes or delay corners; fall back
    /// to [`Independent`](Self::Independent) otherwise. The default.
    #[default]
    Auto,
    /// Settle every case independently from the settled base — the
    /// thesis' §2.7 scheme, and the baseline the case tree is
    /// property-tested against.
    Independent,
    /// Always build the case tree: organize cases into a trie on
    /// shared assignment prefixes, settle each internal node's overlay
    /// once on its parent's state, and fan only the leaf suffixes
    /// across the worker pool (DESIGN.md § "The case tree").
    Tree,
}

impl CaseStrategy {
    /// Stable token for reports and the `--case-strategy` CLI flag:
    /// `auto`, `naive` (the independent path) or `tree`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CaseStrategy::Auto => "auto",
            CaseStrategy::Independent => "naive",
            CaseStrategy::Tree => "tree",
        }
    }
}

impl fmt::Display for CaseStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CaseStrategy {
    type Err = String;

    /// Parses a `--case-strategy` value; `independent` is accepted as a
    /// spelled-out alias of `naive`.
    fn from_str(s: &str) -> Result<CaseStrategy, String> {
        match s {
            "auto" => Ok(CaseStrategy::Auto),
            "naive" | "independent" => Ok(CaseStrategy::Independent),
            "tree" => Ok(CaseStrategy::Tree),
            other => Err(format!(
                "unknown case strategy '{other}' (expected auto, tree or naive)"
            )),
        }
    }
}

/// Effort spent settling shared-prefix case-tree nodes in one
/// [`Verifier::run`] (zero for independent scheduling). Node effort is
/// paid once per prefix on behalf of all its leaves, so it is *not*
/// folded into any per-case counters; it does count toward the engine
/// totals and the `RunEnd` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Internal tree nodes settled (shared prefixes + corner roots).
    pub nodes: usize,
    /// Signal-change events across all node settles.
    pub events: u64,
    /// Primitive evaluations across all node settles.
    pub evaluations: u64,
}

/// Checker/storage memoization counters of one [`Verifier::run`] — the
/// per-leaf *fixed* cost the case tree amortizes. Checker units are
/// checker primitives, `&A`/`&H` hazard pairs and signal assertions;
/// storage units are per-signal value-record measurements. On the
/// independent path every leaf evaluates every unit (all evals, zero
/// hits), so these counters are directly comparable across strategies.
/// All fields are deterministic: they depend on the case set and the
/// netlist, never on worker count or timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Checker/storage passes run at tree nodes (shared prefixes,
    /// corner roots, and the lazily-computed base pass) — paid once per
    /// prefix on behalf of all its leaves.
    pub node_passes: u64,
    /// Checker units evaluated during node passes.
    pub node_check_evals: u64,
    /// Checker units node passes inherited from their parent's pass.
    pub node_check_hits: u64,
    /// Checker units evaluated at leaves (the per-case dirty cone).
    pub leaf_check_evals: u64,
    /// Checker units leaves inherited clean-and-empty from their node.
    pub leaf_check_hits: u64,
    /// Signals measured for storage accounting at leaves.
    pub leaf_storage_evals: u64,
    /// Signals whose storage measurement was inherited from the node.
    pub leaf_storage_hits: u64,
    /// Work units (child nodes and leaves) released by the scheduler
    /// when their parent node settled.
    pub releases: u64,
}

impl MemoStats {
    /// Fraction of leaf checker units inherited rather than evaluated,
    /// in `0.0..=1.0`; `0.0` when no leaf checks ran at all.
    #[must_use]
    pub fn leaf_hit_rate(&self) -> f64 {
        let total = self.leaf_check_evals + self.leaf_check_hits;
        if total == 0 {
            0.0
        } else {
            // Precision loss needs > 2^52 checker units; counters never
            // get near that.
            #[allow(clippy::cast_precision_loss)]
            {
                self.leaf_check_hits as f64 / total as f64
            }
        }
    }
}

/// Whether [`Verifier::run`] snapshots the verifier at the settled base
/// (the §2.9 fixed point, before any case overlay is installed) into
/// [`RunOutcome::checkpoint`]. The snapshot is the correct `prior` for a
/// later [`Verifier::warm_start`]; `scald-incr` uses it to checkpoint
/// sessions without a separate settle call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// No snapshot (the default); [`RunOutcome::checkpoint`] is `None`.
    #[default]
    None,
    /// Clone the verifier right after the base settle, before the case
    /// fan-out. Costs one deep copy of the design state.
    SettledBase,
}

/// Effort of the base (no-override) settle inside one [`Verifier::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaseResult {
    /// Signal-change events during the base settle.
    pub events: u64,
    /// Primitive evaluations during the base settle.
    pub evaluations: u64,
    /// `true` for a cold full settle (every primitive enqueued, §2.9)
    /// rather than a return to an already settled base. On a cold run
    /// the base effort is *also* folded into the first case's counters,
    /// preserving the invariant that per-case counters sum to the
    /// engine totals.
    pub full_settle: bool,
}

/// Everything one [`Verifier::run`] produced: the base settle's effort,
/// one [`CaseResult`] per analysed case, and (when requested) a
/// settled-base checkpoint for incremental re-verification.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The base settle's effort, shared by every case.
    pub base: BaseResult,
    /// Per-case results in input order — never empty (a run with no
    /// explicit cases analyses the implicit base case).
    pub cases: Vec<CaseResult>,
    /// Shared-prefix settle effort, when the case tree ran.
    pub prefix: PrefixStats,
    /// Checker/storage memoization counters (see [`MemoStats`]).
    pub memo: MemoStats,
    /// The settled-base snapshot, if
    /// [`CheckpointPolicy::SettledBase`] was requested.
    pub checkpoint: Option<Box<Verifier>>,
}

impl RunOutcome {
    /// The sole case's result, or a [`MultiCaseError`] if the run
    /// analysed more than one case — the accessor library code should
    /// use when it *expects* a single-case run but cannot prove it.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCaseError`] when the run analysed several cases.
    pub fn try_sole(&self) -> Result<&CaseResult, MultiCaseError> {
        match self.cases.as_slice() {
            [one] => Ok(one),
            _ => Err(MultiCaseError {
                cases: self.cases.len(),
            }),
        }
    }

    /// The sole case's result — a CLI/example convenience for runs that
    /// are single-case *by construction*. Library code handling caller
    /// input should prefer [`try_sole`](Self::try_sole).
    ///
    /// # Panics
    ///
    /// Panics if the run analysed more than one case.
    #[must_use]
    pub fn sole(&self) -> &CaseResult {
        assert!(
            self.cases.len() == 1,
            "RunOutcome::sole on a {}-case run",
            self.cases.len()
        );
        &self.cases[0]
    }

    /// Owning [`sole`](Self::sole): consumes the outcome and returns the
    /// single case's result. Like [`sole`](Self::sole), a convenience
    /// for runs single-case by construction; library code should prefer
    /// [`try_sole`](Self::try_sole).
    ///
    /// # Panics
    ///
    /// Panics if the run analysed more than one case.
    #[must_use]
    pub fn into_sole(self) -> CaseResult {
        assert!(
            self.cases.len() == 1,
            "RunOutcome::into_sole on a {}-case run",
            self.cases.len()
        );
        self.cases.into_iter().next().expect("one case")
    }
}

/// Configures and builds a [`Verifier`]: the front door for everything
/// beyond a plain run — worker-pool size, oscillation budget, and an
/// observability [`TraceSink`].
///
/// [`Verifier::new`] is a shim over the all-defaults builder, so simple
/// callers never see this type.
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_trace::CounterSink;
/// use scald_verifier::{RunOptions, VerifierBuilder};
/// use scald_wave::{DelayRange, Time};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let sink = Arc::new(CounterSink::new());
/// let mut v = VerifierBuilder::new(b.finish()?)
///     .jobs(2)
///     .trace(Arc::clone(&sink) as Arc<_>)
///     .build();
/// let outcome = v.run(&RunOptions::new())?;
/// assert!(outcome.sole().is_clean());
/// assert_eq!(sink.snapshot().evaluations, outcome.sole().evaluations);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
#[must_use]
pub struct VerifierBuilder {
    jobs: Option<usize>,
    oscillation_budget: Option<u64>,
    trace: Option<Arc<dyn TraceSink>>,
    netlist: Option<Netlist>,
    eval_cache: Option<bool>,
    shared_cache: Option<Arc<EvalCache>>,
}

impl VerifierBuilder {
    /// Starts a builder for verifying `netlist`, with default worker
    /// count (available parallelism), default oscillation budget
    /// (256 evaluations per primitive, plus slack for tiny designs) and
    /// no tracing.
    pub fn new(netlist: Netlist) -> VerifierBuilder {
        VerifierBuilder {
            netlist: Some(netlist),
            ..VerifierBuilder::default()
        }
    }

    /// Sets the run's worker budget (clamped to at least 1). One budget
    /// governs *both* parallel dimensions: case fan-out across the case
    /// pool and wave evaluation inside every settle loop. Nested settles
    /// split the budget — with `jobs(8)` and 4 cases, 4 case workers
    /// each evaluate waves 2 wide — so a run never oversubscribes the
    /// machine. [`RunOptions::jobs`] overrides this per run; results are
    /// byte-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> VerifierBuilder {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the oscillation budget: the maximum primitive evaluations one
    /// settle pass may perform before the engine reports
    /// [`VerifyError::Oscillation`]. Lower it to fail fast on designs
    /// with suspected combinational loops; raise it for pathological but
    /// convergent circuits.
    pub fn oscillation_budget(mut self, evaluations: u64) -> VerifierBuilder {
        self.oscillation_budget = Some(evaluations.max(1));
        self
    }

    /// Attaches an observability sink. Every settle loop then emits
    /// [`TraceEvent`]s (per-primitive evaluations, per-signal settle
    /// ordinals, queue depths, per-case wall-clock/effort). Without a
    /// sink the engine pays only an `Option` check per evaluation.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> VerifierBuilder {
        self.trace = Some(sink);
        self
    }

    /// Enables or disables the evaluation memo table (on by default).
    /// Disabling it (`--no-eval-cache` on the CLI) re-runs every kernel —
    /// the A/B baseline for benchmarking; results are byte-identical
    /// either way.
    pub fn eval_cache(mut self, enabled: bool) -> VerifierBuilder {
        self.eval_cache = Some(enabled);
        self
    }

    /// Injects an existing [`EvalCache`] instead of creating a private
    /// one, so several verifiers (e.g. a `scald-incr` session's
    /// re-verifications) share one memo table. Ignored if the cache is
    /// explicitly disabled via [`eval_cache(false)`](Self::eval_cache).
    pub fn shared_eval_cache(mut self, cache: Arc<EvalCache>) -> VerifierBuilder {
        self.shared_cache = Some(cache);
        self
    }

    /// Builds the verifier and initializes all signal states per §2.9.
    ///
    /// # Panics
    ///
    /// Panics if the builder was obtained via `Default` instead of
    /// [`VerifierBuilder::new`] (there is no netlist to verify).
    #[must_use]
    pub fn build(self) -> Verifier {
        let netlist = self.netlist.expect("VerifierBuilder::new sets the netlist");
        let budget = self
            .oscillation_budget
            .unwrap_or_else(|| 256 * (netlist.prims().len() as u64 + 64));
        let cache = if self.eval_cache.unwrap_or(true) {
            Some(self.shared_cache.unwrap_or_default())
        } else {
            None
        };
        let mut v = Verifier::init(netlist);
        if let Some(cache) = cache {
            // Intern every primitive's static descriptor once: unchanged
            // prims of a rebuilt (incr-session) netlist land on the same
            // signature, which is what makes warm re-runs hit.
            v.prim_sigs = Arc::new(
                v.netlist
                    .prims()
                    .iter()
                    .map(|p| cache.sig_for_prim(&v.netlist, p))
                    .collect(),
            );
            v.eval_cache = Some(cache);
        }
        v.jobs = self.jobs.unwrap_or_else(default_jobs);
        v.budget = budget;
        v.trace = self.trace;
        v
    }
}

/// The SCALD Timing Verifier: simulates one clock period of the circuit
/// symbolically and checks every timing constraint (§2.1, §2.9).
///
/// # Examples
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_verifier::{RunOptions, Verifier};
/// use scald_wave::{DelayRange, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("IN .S0-6", 32)?;
/// let q = b.signal_vec("OUT", 32)?;
/// b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
///
/// let mut v = Verifier::new(b.finish()?);
/// let outcome = v.run(&RunOptions::new())?;
/// assert!(outcome.sole().is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Verifier {
    netlist: Netlist,
    /// Computed (pre-case-mapping) states, struct-of-arrays.
    raw: SoaState,
    /// Effective states seen by evaluation: raw with case overrides applied.
    eff: SoaState,
    /// Signals whose state is fixed by an assertion (clocks, asserted or
    /// assumed-stable undriven signals) and never overwritten by a driver.
    pinned: Vec<bool>,
    queue: VecDeque<PrimId>,
    queued: Vec<bool>,
    /// Case overrides in force. `BTreeMap` so any iteration that reaches
    /// a report or trace is in signal order, never `HashMap` order.
    overrides: BTreeMap<SignalId, Value>,
    hazards: BTreeSet<(PrimId, usize)>,
    /// Undriven, unasserted signals assumed always stable (§2.5) — the
    /// special cross-reference listing for the designer.
    assumed_stable: Vec<SignalId>,
    /// Driven signals whose clock assertion pins their value (§2.6 clock
    /// tuning): the driver's computed value is ignored.
    pinned_clock_drivers: Vec<SignalId>,
    /// Per-driver output states for wired-OR signals (§3.1, Fig 3-1's
    /// ECL bus): the signal's effective value is the worst-case OR of all
    /// contributions. `BTreeMap` keeps every walk of it deterministic.
    wired_contributions: BTreeMap<(SignalId, PrimId), SignalState>,
    /// The delay corner of the currently installed state — the last
    /// run's final case's corner. Post-run inspection (`check_now`,
    /// `slack_report`) evaluates at this corner, and the next base
    /// settle re-evaluates everything when leaving a point corner.
    corner: DelayCorner,
    total_events: u64,
    total_evaluations: u64,
    /// Set by [`warm_start`](Self::warm_start): suppresses the
    /// enqueue-everything initial pass even when no evaluation has
    /// happened yet (a warm verifier whose dirty cone is empty must not
    /// re-evaluate the whole design).
    warmed: bool,
    /// Default worker budget for [`run`](Self::run): case fan-out and
    /// intra-settle wave evaluation share it.
    jobs: usize,
    /// Evaluation budget per settle pass before declaring oscillation.
    budget: u64,
    /// Observability sink; `None` keeps the hot loops branch-only.
    trace: Option<Arc<dyn TraceSink>>,
    /// Memo table for pure primitive evaluations; shared (`Arc`) so
    /// checkpoint clones and incr-session re-verifications reuse it.
    eval_cache: Option<Arc<EvalCache>>,
    /// Per-primitive descriptor signature in the cache (`None` for
    /// checkers); indexed by `PrimId::index()`. Empty when uncached.
    prim_sigs: Arc<Vec<Option<u32>>>,
    /// The [`CaseStrategy`] requested by the last [`run`](Self::run) —
    /// echoed in [`EngineStats`] so reports record which scheduling
    /// path produced them.
    last_strategy: CaseStrategy,
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Verifier")
            .field("signals", &self.netlist.signals().len())
            .field("prims", &self.netlist.prims().len())
            .field("jobs", &self.jobs)
            .field("budget", &self.budget)
            .field("traced", &self.trace.is_some())
            .field("cached", &self.eval_cache.is_some())
            .field("total_events", &self.total_events)
            .field("total_evaluations", &self.total_evaluations)
            .finish_non_exhaustive()
    }
}

impl Verifier {
    /// Creates a verifier with all defaults — a shim over
    /// [`VerifierBuilder`], which configures worker count, oscillation
    /// budget and tracing.
    #[must_use]
    pub fn new(netlist: Netlist) -> Verifier {
        VerifierBuilder::new(netlist).build()
    }

    /// Initializes all signal states per §2.9: asserted signals take
    /// their asserted values, undriven unasserted signals are assumed
    /// stable (and cross-referenced), everything else starts `U`.
    fn init(netlist: Netlist) -> Verifier {
        let period = netlist.config().timing.period;
        let timing = netlist.config().timing;
        let n = netlist.signals().len();
        let mut raw = SoaState::with_capacity(n);
        let mut pinned = vec![false; n];
        let mut assumed_stable = Vec::new();
        let mut pinned_clock_drivers = Vec::new();

        for (sid, sig) in netlist.iter_signals() {
            let driven = netlist.driver(sid).is_some();
            let state = match &sig.assertion {
                Some(a) if a.kind.is_clock() => {
                    let (wave, skew) = a.to_state(&timing);
                    pinned[sid.index()] = true;
                    if driven {
                        pinned_clock_drivers.push(sid);
                    }
                    SignalState {
                        wave: wave.into(),
                        skew,
                        eval: None,
                    }
                }
                Some(a) => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        let (wave, skew) = a.to_state(&timing);
                        SignalState {
                            wave: wave.into(),
                            skew,
                            eval: None,
                        }
                    }
                }
                None => {
                    if driven {
                        SignalState::new(Waveform::constant(period, Value::Unknown))
                    } else {
                        pinned[sid.index()] = true;
                        assumed_stable.push(sid);
                        SignalState::new(Waveform::constant(period, Value::Stable))
                    }
                }
            };
            raw.push(state);
        }

        let eff = raw.clone();
        let queued = vec![false; netlist.prims().len()];
        Verifier {
            netlist,
            raw,
            eff,
            pinned,
            queue: VecDeque::new(),
            queued,
            overrides: BTreeMap::new(),
            hazards: BTreeSet::new(),
            wired_contributions: BTreeMap::new(),
            corner: DelayCorner::Worst,
            assumed_stable,
            pinned_clock_drivers,
            total_events: 0,
            total_evaluations: 0,
            warmed: false,
            jobs: 1,
            budget: 0,
            trace: None,
            eval_cache: None,
            prim_sigs: Arc::new(Vec::new()),
            last_strategy: CaseStrategy::default(),
        }
    }

    /// The netlist being verified.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The settled effective state of a signal (after [`run`](Self::run)).
    /// Owned: the engine keeps states in parallel arrays, so there is no
    /// single record to borrow; the clone is a reference-count bump on
    /// the interned wave handle.
    #[must_use]
    pub fn state(&self, id: SignalId) -> SignalState {
        self.eff.state(id.index())
    }

    /// The fully resolved (skew-folded) waveform of a signal.
    #[must_use]
    pub fn resolved(&self, id: SignalId) -> Waveform {
        self.eff.get(id.index()).resolved().to_waveform()
    }

    /// Hit/miss/size counters of the evaluation memo table, if caching is
    /// enabled.
    #[must_use]
    pub fn eval_cache_stats(&self) -> Option<crate::EvalCacheStats> {
        self.eval_cache.as_ref().map(|c| c.stats())
    }

    /// Undriven, unasserted signals assumed always stable — the thesis'
    /// special cross-reference listing (§2.5).
    #[must_use]
    pub fn assumed_stable_signals(&self) -> &[SignalId] {
        &self.assumed_stable
    }

    /// Total events processed so far (an event = an output given a new
    /// value, §3.3.2).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total primitive evaluations performed so far.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.total_evaluations
    }

    fn apply_override(&self, sid: SignalId, state: StateRef<'_>) -> SignalState {
        override_state(self.overrides.get(&sid).copied(), state)
    }

    fn enqueue(&mut self, pid: PrimId) {
        if !self.queued[pid.index()] {
            self.queued[pid.index()] = true;
            self.queue.push_back(pid);
        }
    }

    fn enqueue_fanout(&mut self, sid: SignalId) {
        let fanout: Vec<PrimId> = self.netlist.fanout(sid).to_vec();
        for pid in fanout {
            self.enqueue(pid);
        }
    }

    /// Runs the worklist to a fixed point with `wave_jobs` evaluation
    /// workers per wave; returns `(events, evaluations)`. Effort is
    /// folded into the running totals on the error path too, matching
    /// the thesis' effort accounting.
    fn settle(&mut self, wave_jobs: usize) -> Result<(u64, u64), VerifyError> {
        let mut events = 0u64;
        let mut evaluations = 0u64;
        let result = settle_waves(
            &WaveParams {
                netlist: &self.netlist,
                pinned: &self.pinned,
                overrides: &self.overrides,
                budget: self.budget,
                jobs: wave_jobs,
                corner: self.corner,
                case: None,
                trace: self.trace.as_deref(),
                cache: self
                    .eval_cache
                    .as_deref()
                    .map(|c| (c, self.prim_sigs.as_slice())),
            },
            WaveBooks {
                hazards: &mut self.hazards,
                wired: &mut self.wired_contributions,
                queue: &mut self.queue,
                queued: &mut self.queued,
                events: &mut events,
                evaluations: &mut evaluations,
            },
            &mut self.raw,
            &mut self.eff,
        );
        self.total_events += events;
        self.total_evaluations += evaluations;
        result.map(|()| (events, evaluations))
    }

    /// Applies a case's overrides, dirtying the affected signals' fan-out.
    fn apply_case(&mut self, case: &Case) -> Result<(), VerifyError> {
        let mut new_overrides = BTreeMap::new();
        for (name, v) in case.assignments() {
            let sid = self
                .netlist
                .signal_by_name(name)
                .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
            new_overrides.insert(sid, if *v { Value::One } else { Value::Zero });
        }
        let affected: BTreeSet<SignalId> = self
            .overrides
            .keys()
            .chain(new_overrides.keys())
            .copied()
            .collect();
        self.overrides = new_overrides;
        for sid in affected {
            let eff = self.apply_override(sid, self.raw.get(sid.index()));
            if self.eff.get(sid.index()) != eff {
                self.eff.set(sid.index(), eff);
                self.enqueue_fanout(sid);
            }
        }
        Ok(())
    }

    /// Settles the base (no-override) fixed point and returns the
    /// `(events, evaluations)` this settle took. On a fresh verifier this
    /// is the full evaluation of §2.9; on a [warm-started](Self::warm_start)
    /// one only the seeded dirty cone is processed.
    ///
    /// A verifier in this state is the correct `prior` for a later
    /// [`warm_start`](Self::warm_start): its signal states, hazard set and
    /// wired-OR contributions describe the base fixed point, not some
    /// case's overlay (which [`run`](Self::run) installs when it
    /// finishes). [`CheckpointPolicy::SettledBase`] captures the same
    /// state without a separate settle call.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Oscillation`] if the circuit does not
    /// settle.
    pub fn settle_base(&mut self) -> Result<(u64, u64), VerifyError> {
        self.prepare_base()?;
        self.settle(self.jobs)
    }

    /// Returns the verifier to the base configuration (no overrides,
    /// worst-case corner) and enqueues whatever the next settle must
    /// re-evaluate: everything on a cold verifier (§2.9's initial pass)
    /// or when the installed state was settled at a point corner, just
    /// the dirtied override cones otherwise. Returns whether this was
    /// the cold first run.
    fn prepare_base(&mut self) -> Result<bool, VerifyError> {
        let first_run = self.total_evaluations == 0 && !self.warmed;
        let corner_reset = self.corner != DelayCorner::Worst;
        self.apply_case(&Case::new())?;
        self.corner = DelayCorner::Worst;
        if first_run || corner_reset {
            let all: Vec<PrimId> = self.netlist.iter_prims().map(|(p, _)| p).collect();
            for pid in all {
                self.enqueue(pid);
            }
        }
        Ok(first_run)
    }

    /// Seeds this (freshly built, not yet run) verifier from `prior`'s
    /// settled base fixed point, so the next settle only re-evaluates the
    /// structurally dirty cone. The caller asserts, via the maps, which
    /// parts of the design survived the edit:
    ///
    /// * `signal_map` — `(self, prior)` id pairs of signals whose
    ///   definition (width, assertion, wire delay, wired-OR flag, driver
    ///   set) is unchanged. Their settled states are copied over; every
    ///   other signal keeps its §2.9 init value until re-derived.
    /// * `prim_map` — `(self, prior)` id pairs of unchanged primitives.
    ///   Their recorded hazards and wired-OR contributions carry over.
    /// * `seeds` — the dirty frontier to enqueue: edited primitives, the
    ///   fan-out of dirtied signals, *and the drivers of dirtied signals*
    ///   (a dirtied signal's value must be recomputed even when its
    ///   driver itself is clean). Propagation handles everything
    ///   transitively downstream.
    ///
    /// `prior` must be at its settled base — i.e. right after
    /// [`settle_base`](Self::settle_base), before any case overlay was
    /// installed. With correct maps the subsequent
    /// [`settle_base`](Self::settle_base)/[`run`](Self::run)
    /// reach a state identical to a cold run of the edited design
    /// (`scald-incr` property-tests this; see `Report::strip_effort` for
    /// the one caveat, effort counters). Exactness relies on hazard sets
    /// being trajectory-independent, which holds for connection-attribute
    /// directives (`&H` on a pin); designs relying on *propagated*
    /// evaluation directives through edited regions should re-verify
    /// cold.
    pub fn warm_start(
        &mut self,
        prior: &Verifier,
        signal_map: &[(SignalId, SignalId)],
        prim_map: &[(PrimId, PrimId)],
        seeds: &[PrimId],
    ) {
        let mut copied = 0usize;
        for &(new, old) in signal_map {
            if self.pinned[new.index()] {
                continue; // init already pinned it to its asserted value
            }
            let st = prior.raw.state(old.index());
            self.eff.set(new.index(), st.clone());
            self.raw.set(new.index(), st);
            copied += 1;
        }
        let prim_back: HashMap<PrimId, PrimId> =
            prim_map.iter().map(|&(new, old)| (old, new)).collect();
        let sig_back: HashMap<SignalId, SignalId> =
            signal_map.iter().map(|&(new, old)| (old, new)).collect();
        for &(pid, idx) in &prior.hazards {
            if let Some(&np) = prim_back.get(&pid) {
                self.hazards.insert((np, idx));
            }
        }
        for (&(sid, pid), st) in &prior.wired_contributions {
            if let (Some(&ns), Some(&np)) = (sig_back.get(&sid), prim_back.get(&pid)) {
                if self.netlist.drivers(ns).contains(&np) {
                    self.wired_contributions.insert((ns, np), st.clone());
                }
            }
        }
        for &pid in seeds {
            self.enqueue(pid);
        }
        self.warmed = true;
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::WarmStart {
                copied_signals: copied,
                seeded_prims: self.queue.len(),
                prims: self.netlist.prims().len(),
            });
        }
    }

    /// Verifies the circuit per `options` — the single entry point for
    /// plain runs, case analysis (§2.7) and incremental sessions. The
    /// base (no-override) fixed point is settled once — the full
    /// evaluation of §2.9 on a cold verifier, only the dirty cone after
    /// a [`warm_start`](Self::warm_start) — then every case re-evaluates
    /// the cone its overrides dirty on its own copy-on-write overlay,
    /// fanned across the worker budget.
    ///
    /// Results are deterministic: waveforms, violation lists, report
    /// JSON and per-case trace streams are byte-identical for every
    /// worker budget (`tests/parallel_settle.rs` proves it).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::UnknownCaseSignal`] if a case names an
    /// unknown signal (checked up front, before any evaluation) and
    /// [`VerifyError::Oscillation`] if a settle exceeds the evaluation
    /// budget. On a case error the first failing case (by input order)
    /// is reported; completed cases' effort still counts in the totals.
    pub fn run(&mut self, options: &RunOptions) -> Result<RunOutcome, VerifyError> {
        let base_case;
        let cases: &[Case] = if options.cases.is_empty() {
            base_case = [Case::new()];
            &base_case
        } else {
            options.cases.cases()
        };
        self.run_impl(
            cases,
            options.jobs.unwrap_or(self.jobs),
            options.checkpoint == CheckpointPolicy::SettledBase,
            options.strategy,
        )
    }

    /// The engine behind [`run`](Self::run): resolves case names, settles
    /// the base with the full worker budget, optionally checkpoints, then
    /// fans the cases across the pool with the budget split between case
    /// workers and per-case wave evaluation.
    fn run_impl(
        &mut self,
        cases: &[Case],
        jobs: usize,
        checkpoint: bool,
        strategy: CaseStrategy,
    ) -> Result<RunOutcome, VerifyError> {
        let run_started = Instant::now();
        let effort_before = (self.total_events, self.total_evaluations);
        self.last_strategy = strategy;
        // Split the worker budget: W case workers each evaluating waves
        // J/W wide never oversubscribe a J-job budget.
        let jobs = jobs.max(1);
        let case_workers = jobs.min(cases.len());
        let wave_jobs = (jobs / case_workers).max(1);
        if let Some(trace) = &self.trace {
            trace.record(&TraceEvent::RunStart {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: cases.len(),
                jobs: case_workers,
            });
        }
        // Resolve every case's signal names up front, so an unknown name
        // errors deterministically before any evaluation runs.
        let mut resolved: Vec<Vec<(SignalId, Value)>> = Vec::with_capacity(cases.len());
        for case in cases {
            let mut assigns = Vec::with_capacity(case.assignments().len());
            for (name, v) in case.assignments() {
                let sid = self
                    .netlist
                    .signal_by_name(name)
                    .ok_or_else(|| VerifyError::UnknownCaseSignal { name: name.clone() })?;
                assigns.push((sid, if *v { Value::One } else { Value::Zero }));
            }
            // Deterministic seeding order for the worker's worklist.
            assigns.sort_by_key(|(sid, _)| sid.index());
            resolved.push(assigns);
        }
        let corners: Vec<DelayCorner> = cases.iter().map(Case::delay_corner).collect();
        // Factor shared work through the case tree when asked to — or,
        // under `Auto`, when the trie actually found sharing (a prefix
        // node or a corner root). The `Auto` fallback keeps runs whose
        // cases share nothing on the independent path, effort counters
        // and all.
        let tree = match strategy {
            CaseStrategy::Independent => None,
            CaseStrategy::Tree => Some(CaseTree::build(&resolved, &corners)),
            CaseStrategy::Auto => {
                let t = CaseTree::build(&resolved, &corners);
                (!t.nodes.is_empty()).then_some(t)
            }
        };

        // Establish (or return to) the settled base: no overrides, at
        // the worst-case corner. The base settle gets the whole budget —
        // no case worker is running yet.
        let first_run = self.prepare_base()?;
        let (base_events, base_evaluations) = self.settle(jobs)?;
        let checkpoint = checkpoint.then(|| Box::new(self.clone()));

        // Fan the cases across the pool. Each worker repeatedly claims
        // the next unclaimed unit of work (a case, or a case-tree leaf)
        // and settles it against shared immutable state; per-case effort
        // is summed into the totals with atomics as workers finish.
        let netlist = &self.netlist;
        let base_raw: &SoaState = &self.raw;
        let base_eff: &SoaState = &self.eff;
        let pinned: &[bool] = &self.pinned;
        let base_hazards = &self.hazards;
        let base_wired = &self.wired_contributions;
        let budget = self.budget;
        let cache: Option<(&EvalCache, &[Option<u32>])> = self
            .eval_cache
            .as_deref()
            .map(|c| (c, self.prim_sigs.as_slice()));
        let trace: Option<&dyn TraceSink> = self.trace.as_deref();
        let labels: Vec<String> = cases.iter().map(Case::label).collect();
        let events_total = AtomicU64::new(0);
        let evaluations_total = AtomicU64::new(0);
        // Node-settle and memoization counters; atomics because under
        // dependency-aware scheduling nodes settle concurrently. Each
        // total is deterministic even though accumulation order is not.
        let prefix_nodes = AtomicUsize::new(0);
        let prefix_events = AtomicU64::new(0);
        let prefix_evaluations = AtomicU64::new(0);
        let memo_node_passes = AtomicU64::new(0);
        let memo_node_evals = AtomicU64::new(0);
        let memo_node_hits = AtomicU64::new(0);
        let memo_releases = AtomicU64::new(0);
        let record_case_end =
            |i: usize, started: Instant, outcome: &Result<CaseOutcome, VerifyError>| {
                if let Ok(o) = outcome {
                    events_total.fetch_add(o.events, Ordering::Relaxed);
                    evaluations_total.fetch_add(o.evaluations, Ordering::Relaxed);
                    if let Some(t) = trace {
                        t.record(&TraceEvent::LeafChecks {
                            case: i as u32,
                            check_evals: o.check_evals,
                            check_hits: o.check_hits,
                            storage_evals: o.storage_evals,
                            storage_hits: o.storage_hits,
                        });
                        t.record(&TraceEvent::CaseEnd {
                            case: i as u32,
                            wall_nanos: u64::try_from(started.elapsed().as_nanos())
                                .unwrap_or(u64::MAX),
                            events: o.events,
                            evaluations: o.evaluations,
                            violations: o.violations.len(),
                        });
                    }
                }
            };
        let mut outcomes: Vec<Option<Result<CaseOutcome, VerifyError>>> = match &tree {
            None => {
                let work = |i: usize| {
                    if let Some(t) = trace {
                        t.record(&TraceEvent::CaseStart {
                            case: i as u32,
                            label: &labels[i],
                        });
                    }
                    let case_started = Instant::now();
                    let outcome = settle_case(
                        netlist,
                        base_raw,
                        base_eff,
                        pinned,
                        base_hazards,
                        base_wired,
                        &resolved[i],
                        corners[i],
                        budget,
                        wave_jobs,
                        cache,
                        trace.map(|t| (t, i as u32)),
                        None,
                    );
                    record_case_end(i, case_started, &outcome);
                    outcome
                };
                if case_workers == 1 {
                    (0..cases.len()).map(|i| Some(work(i))).collect()
                } else {
                    let slots: Vec<Mutex<Option<Result<CaseOutcome, VerifyError>>>> =
                        (0..cases.len()).map(|_| Mutex::new(None)).collect();
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|s| {
                        for _ in 0..case_workers {
                            s.spawn(|| loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= cases.len() {
                                    break;
                                }
                                let outcome = work(i);
                                *slots[i].lock().expect("case slot poisoned") = Some(outcome);
                            });
                        }
                    });
                    slots
                        .into_iter()
                        .map(|m| m.into_inner().expect("case slot poisoned"))
                        .collect()
                }
            }
            Some(tree) => {
                // Dependency-aware scheduling: every node and leaf is a
                // work unit released the moment its parent node settles,
                // so prefix settles overlap leaf suffixes under one jobs
                // budget instead of running in a serial phase. Results
                // are byte-identical for every worker count because each
                // unit is a pure function of its parent's settled state
                // (DESIGN.md § "Dependency-release scheduling").
                let mut node_children: Vec<Vec<Unit>> = vec![Vec::new(); tree.nodes.len()];
                let mut ready: Vec<Unit> = Vec::new();
                for (ni, node) in tree.nodes.iter().enumerate() {
                    match node.parent {
                        Some(p) => node_children[p].push(Unit::Node(ni)),
                        None => ready.push(Unit::Node(ni)),
                    }
                }
                for (li, leaf) in tree.leaves.iter().enumerate() {
                    match leaf.node {
                        Some(n) => node_children[n].push(Unit::Leaf(li)),
                        None => ready.push(Unit::Leaf(li)),
                    }
                }
                // Settled node states, handed from the worker that
                // settles a node to the workers running its children
                // (`OnceLock::set`/`get` order the hand-off).
                let node_states: Vec<OnceLock<NodeState<'_>>> =
                    (0..tree.nodes.len()).map(|_| OnceLock::new()).collect();
                // The base checker pass and storage total, computed
                // lazily by whichever worker first reaches a unit that
                // roots directly on the settled base.
                let base_check: OnceLock<CheckCache> = OnceLock::new();
                let base_records: OnceLock<usize> = OnceLock::new();
                let base_check_pass = || -> &CheckCache {
                    base_check.get_or_init(|| {
                        let hazard_list: Vec<(PrimId, usize)> =
                            base_hazards.iter().copied().collect();
                        let pass = run_checks_cached(
                            netlist,
                            base_eff,
                            &hazard_list,
                            DelayCorner::Worst,
                            None,
                        );
                        memo_node_passes.fetch_add(1, Ordering::Relaxed);
                        memo_node_evals.fetch_add(pass.evaluated, Ordering::Relaxed);
                        pass.cache
                    })
                };
                let base_total_records = || -> usize {
                    *base_records
                        .get_or_init(|| StorageReport::measure(netlist, base_raw).value_records)
                };
                // Settles one internal node on its parent's state, then
                // runs the node's own checker/storage pass (a delta off
                // the parent's cached pass) so every descendant inherits
                // from it. A node error skips the pass and fails the
                // whole subtree — children still run, propagate the
                // error to their leaves immediately, and the scheduler
                // drains without deadlocking.
                let node_work = |ni: usize| {
                    let node = &tree.nodes[ni];
                    let parent = node
                        .parent
                        .map(|p| node_states[p].get().expect("parent settled before release"));
                    let (mut st, parent_error) = match parent {
                        None => (
                            NodeState {
                                raw: ConeState::new(base_raw),
                                eff: ConeState::new(base_eff),
                                hazards: base_hazards.clone(),
                                wired: base_wired.clone(),
                                overrides: BTreeMap::new(),
                                error: None,
                                cache: None,
                                value_records: 0,
                            },
                            None,
                        ),
                        Some(ps) => (
                            NodeState {
                                raw: ps.raw.fork(),
                                eff: ps.eff.fork(),
                                hazards: ps.hazards.clone(),
                                wired: ps.wired.clone(),
                                overrides: ps.overrides.clone(),
                                error: None,
                                cache: None,
                                value_records: 0,
                            },
                            ps.error.clone(),
                        ),
                    };
                    for &(sid, v) in &node.chunk {
                        st.overrides.insert(sid, v);
                    }
                    let mut events = 0u64;
                    let mut evaluations = 0u64;
                    st.error = match parent_error {
                        Some(e) => Some(e),
                        None => settle_overlay(
                            netlist,
                            pinned,
                            &mut st.raw,
                            &mut st.eff,
                            &mut st.hazards,
                            &mut st.wired,
                            &node.chunk,
                            &st.overrides,
                            node.corner,
                            node.reseed_all,
                            budget,
                            wave_jobs,
                            cache,
                            trace.map(|t| (t, None)),
                            &mut events,
                            &mut evaluations,
                        )
                        .err(),
                    };
                    if st.error.is_none() {
                        // The node's checker pass. Violations are
                        // discarded (a node is not a case); the
                        // empty-verdict summary seeds every descendant's
                        // delta pass. A corner root re-times every wave,
                        // so nothing from the Worst-corner base pass is
                        // inheritable there.
                        let hazard_list: Vec<(PrimId, usize)> =
                            st.hazards.iter().copied().collect();
                        let pass = if node.reseed_all {
                            run_checks_cached(netlist, &st.eff, &hazard_list, node.corner, None)
                        } else {
                            let (cache, hazards, eff_parent): (
                                &CheckCache,
                                &BTreeSet<(PrimId, usize)>,
                                &dyn StateView,
                            ) = match parent {
                                Some(ps) => (
                                    ps.cache.as_ref().expect("settled parent has a cache"),
                                    &ps.hazards,
                                    &ps.eff,
                                ),
                                None => (base_check_pass(), base_hazards, base_eff),
                            };
                            let dirty = st.eff.dirty_vs(eff_parent);
                            run_checks_cached(
                                netlist,
                                &st.eff,
                                &hazard_list,
                                node.corner,
                                Some(&CheckMemo {
                                    cache,
                                    hazards,
                                    dirty: &dirty,
                                }),
                            )
                        };
                        memo_node_passes.fetch_add(1, Ordering::Relaxed);
                        memo_node_evals.fetch_add(pass.evaluated, Ordering::Relaxed);
                        memo_node_hits.fetch_add(pass.inherited, Ordering::Relaxed);
                        st.cache = Some(pass.cache);
                        // Storage is corner-independent, so the records
                        // chain runs through corner roots too.
                        let (raw_parent, parent_records): (&dyn StateView, usize) = match parent {
                            Some(ps) => (&ps.raw, ps.value_records),
                            None => (base_raw, base_total_records()),
                        };
                        st.value_records = st.raw.value_records_vs(raw_parent, parent_records).0;
                    }
                    prefix_nodes.fetch_add(1, Ordering::Relaxed);
                    prefix_events.fetch_add(events, Ordering::Relaxed);
                    prefix_evaluations.fetch_add(evaluations, Ordering::Relaxed);
                    if let Some(t) = trace {
                        let label = node_label(netlist, node.corner, &st.overrides);
                        t.record(&TraceEvent::PrefixSettled {
                            node: ni as u32,
                            label: &label,
                            cases: node.leaf_count,
                            events,
                            evaluations,
                        });
                    }
                    st
                };
                // Each leaf forks its node's settled overlay, settles
                // only its unshared suffix, and inherits the node's
                // cached checker verdicts outside its dirty cone.
                let leaf_work = |li: usize| -> (usize, Result<CaseOutcome, VerifyError>) {
                    let leaf = &tree.leaves[li];
                    let i = leaf.case;
                    if let Some(t) = trace {
                        t.record(&TraceEvent::CaseStart {
                            case: i as u32,
                            label: &labels[i],
                        });
                    }
                    let case_started = Instant::now();
                    let outcome = match leaf.node {
                        None => {
                            // Node-less leaves exist only in the
                            // Worst-corner group (every other corner
                            // gets a root node), which makes the base
                            // pass their valid parent; the corner guard
                            // is belt-and-braces, since inheriting
                            // across corners would be unsound.
                            let memo = (corners[i] == DelayCorner::Worst).then(|| LeafMemo {
                                cache: base_check_pass(),
                                hazards: base_hazards,
                                raw_parent: base_raw,
                                eff_parent: base_eff,
                                value_records: base_total_records(),
                            });
                            settle_case(
                                netlist,
                                base_raw,
                                base_eff,
                                pinned,
                                base_hazards,
                                base_wired,
                                &resolved[i],
                                corners[i],
                                budget,
                                wave_jobs,
                                cache,
                                trace.map(|t| (t, i as u32)),
                                memo.as_ref(),
                            )
                        }
                        Some(n) => settle_leaf(
                            netlist,
                            pinned,
                            node_states[n].get().expect("node settled before release"),
                            &resolved[i],
                            leaf.suffix_start,
                            corners[i],
                            budget,
                            wave_jobs,
                            cache,
                            trace.map(|t| (t, i as u32)),
                        ),
                    };
                    record_case_end(i, case_started, &outcome);
                    (i, outcome)
                };
                // Releases a completed node's children into the ready
                // set (the caller publishes the state first, since the
                // `OnceLock` element type pins the state's lifetime).
                let release_children = |ni: usize, push: &mut dyn FnMut(Unit)| {
                    let children = &node_children[ni];
                    memo_releases.fetch_add(children.len() as u64, Ordering::Relaxed);
                    if let Some(t) = trace {
                        t.record(&TraceEvent::SubtreeReleased {
                            node: ni as u32,
                            children: children.len(),
                        });
                    }
                    for &u in children {
                        push(u);
                    }
                };
                if case_workers == 1 {
                    // Single worker: drain the ready queue in release
                    // order on this thread (roots first, children as
                    // their parents complete).
                    let mut out: Vec<Option<Result<CaseOutcome, VerifyError>>> =
                        (0..cases.len()).map(|_| None).collect();
                    let mut queue: VecDeque<Unit> = ready.into();
                    while let Some(unit) = queue.pop_front() {
                        match unit {
                            Unit::Node(ni) => {
                                let st = node_work(ni);
                                if node_states[ni].set(st).is_err() {
                                    unreachable!("each node is settled exactly once");
                                }
                                release_children(ni, &mut |u| queue.push_back(u));
                            }
                            Unit::Leaf(li) => {
                                let (i, outcome) = leaf_work(li);
                                out[i] = Some(outcome);
                            }
                        }
                    }
                    out
                } else {
                    // Worker pool over one shared ready queue. Workers
                    // exit when every leaf has completed: each leaf is
                    // reachable from the ready set through its ancestor
                    // chain, every node completes (errors included) and
                    // releases its children, so the count always drains
                    // — a failing prefix cannot deadlock the pool.
                    let slots: Vec<Mutex<Option<Result<CaseOutcome, VerifyError>>>> =
                        (0..cases.len()).map(|_| Mutex::new(None)).collect();
                    let sched: Mutex<(VecDeque<Unit>, usize)> =
                        Mutex::new((ready.into(), tree.leaves.len()));
                    let ready_cv = Condvar::new();
                    std::thread::scope(|s| {
                        for _ in 0..case_workers {
                            s.spawn(|| loop {
                                let unit = {
                                    let mut guard = sched.lock().expect("scheduler lock poisoned");
                                    loop {
                                        if guard.1 == 0 {
                                            break None;
                                        }
                                        if let Some(u) = guard.0.pop_front() {
                                            break Some(u);
                                        }
                                        guard =
                                            ready_cv.wait(guard).expect("scheduler lock poisoned");
                                    }
                                };
                                let Some(unit) = unit else { break };
                                match unit {
                                    Unit::Node(ni) => {
                                        let st = node_work(ni);
                                        if node_states[ni].set(st).is_err() {
                                            unreachable!("each node is settled exactly once");
                                        }
                                        let mut released = Vec::new();
                                        release_children(ni, &mut |u| released.push(u));
                                        if !released.is_empty() {
                                            let mut guard =
                                                sched.lock().expect("scheduler lock poisoned");
                                            guard.0.extend(released);
                                            drop(guard);
                                            ready_cv.notify_all();
                                        }
                                    }
                                    Unit::Leaf(li) => {
                                        let (i, outcome) = leaf_work(li);
                                        *slots[i].lock().expect("case slot poisoned") =
                                            Some(outcome);
                                        let mut guard =
                                            sched.lock().expect("scheduler lock poisoned");
                                        guard.1 -= 1;
                                        let all_done = guard.1 == 0;
                                        drop(guard);
                                        if all_done {
                                            ready_cv.notify_all();
                                        }
                                    }
                                }
                            });
                        }
                    });
                    slots
                        .into_iter()
                        .map(|m| m.into_inner().expect("case slot poisoned"))
                        .collect()
                }
            }
        };
        let prefix = PrefixStats {
            nodes: prefix_nodes.into_inner(),
            events: prefix_events.into_inner(),
            evaluations: prefix_evaluations.into_inner(),
        };
        let mut memo = MemoStats {
            node_passes: memo_node_passes.into_inner(),
            node_check_evals: memo_node_evals.into_inner(),
            node_check_hits: memo_node_hits.into_inner(),
            releases: memo_releases.into_inner(),
            ..MemoStats::default()
        };
        self.total_events += prefix.events + events_total.into_inner();
        self.total_evaluations += prefix.evaluations + evaluations_total.into_inner();

        // Merge in input-case order; the first error (by case index) wins.
        let mut results = Vec::with_capacity(cases.len());
        let mut last: Option<CaseOutcome> = None;
        for (i, slot) in outcomes.iter_mut().enumerate() {
            let mut outcome = slot.take().expect("worker filled every case slot")?;
            results.push(CaseResult {
                name: format!("case {}: {}", i + 1, cases[i].label()),
                violations: std::mem::take(&mut outcome.violations),
                events: outcome.events + if i == 0 && first_run { base_events } else { 0 },
                evaluations: outcome.evaluations
                    + if i == 0 && first_run {
                        base_evaluations
                    } else {
                        0
                    },
                value_records: outcome.value_records,
            });
            memo.leaf_check_evals += outcome.check_evals;
            memo.leaf_check_hits += outcome.check_hits;
            memo.leaf_storage_evals += outcome.storage_evals;
            memo.leaf_storage_hits += outcome.storage_hits;
            last = Some(outcome);
        }

        // Install the last case's state so `state`/`resolved`/listings
        // reflect it, exactly as the serial path left things.
        let last = last.expect("cases is non-empty");
        for (idx, st) in last.raw_overlay {
            self.raw.set(idx, st);
        }
        for (idx, st) in last.eff_overlay {
            self.eff.set(idx, st);
        }
        self.overrides = last.overrides;
        self.hazards = last.hazards;
        self.wired_contributions = last.wired;
        self.corner = *corners.last().expect("cases is non-empty");
        if let Some(trace) = &self.trace {
            // Effort-class observability: cache counters vary with cache
            // configuration and sharing, so (like RunEnd's wall-clock)
            // they are excluded from determinism comparisons.
            if let Some(cache) = &self.eval_cache {
                let stats = cache.stats();
                trace.record(&TraceEvent::CacheStats {
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                });
            }
            trace.record(&TraceEvent::RunEnd {
                wall_nanos: u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                events: self.total_events - effort_before.0,
                evaluations: self.total_evaluations - effort_before.1,
            });
        }
        Ok(RunOutcome {
            base: BaseResult {
                events: base_events,
                evaluations: base_evaluations,
                full_settle: first_run,
            },
            cases: results,
            prefix,
            memo,
            checkpoint,
        })
    }

    /// Runs all checks against the current settled state without further
    /// evaluation. Useful for inspecting intermediate cases.
    #[must_use]
    pub fn check_now(&self) -> Vec<Violation> {
        let hazards: Vec<(PrimId, usize)> = self.hazards.iter().copied().collect();
        run_all_checks(&self.netlist, &self.eff, &hazards, self.corner)
    }

    /// The signal-value summary listing of Fig 3-10: one line per signal
    /// with its value over the cycle.
    #[must_use]
    pub fn summary_listing(&self) -> String {
        crate::report::format_summary(&self.sorted_waves())
    }

    /// The cross-reference listing of undriven, unasserted signals the
    /// verifier assumed stable (§2.5).
    #[must_use]
    pub fn xref_listing(&self) -> String {
        crate::report::format_xref(&self.assumed_stable_names(), &self.clock_driver_notes())
    }

    /// Storage accounting in the categories of Table 3-3.
    #[must_use]
    pub fn storage_report(&self) -> StorageReport {
        StorageReport::measure(&self.netlist, &self.raw)
    }

    /// Timing margins of every checker against the current settled state:
    /// the slack view (worst margins first). Negative slack corresponds to
    /// a reported violation.
    #[must_use]
    pub fn slack_report(&self) -> Vec<CheckMargin> {
        slack_report(&self.netlist, &self.eff, self.corner)
    }

    /// An ASCII timing diagram of all signals (sorted by name), `columns`
    /// buckets wide — the visual companion to
    /// [`summary_listing`](Self::summary_listing).
    #[must_use]
    pub fn timing_diagram(&self, columns: usize) -> String {
        crate::diagram::render_diagram(&self.sorted_waves(), columns)
    }

    /// Every signal's resolved waveform against the current settled
    /// state, sorted by full name — the rows behind the summary listing
    /// and the timing diagram.
    fn sorted_waves(&self) -> Vec<(String, Waveform)> {
        let mut rows: Vec<(String, Waveform)> = self
            .netlist
            .iter_signals()
            .map(|(sid, sig)| (sig.full_name(), self.resolved(sid)))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    fn assumed_stable_names(&self) -> Vec<String> {
        self.assumed_stable
            .iter()
            .map(|sid| self.netlist.signal(*sid).name.clone())
            .collect()
    }

    fn clock_driver_notes(&self) -> Vec<String> {
        self.pinned_clock_drivers
            .iter()
            .map(|sid| self.netlist.signal(*sid).full_name())
            .collect()
    }

    /// Bundles everything this verifier knows about its last run into one
    /// [`Report`]: the per-case results, engine statistics, the slack and
    /// storage views, the assumed-stable cross-reference and every settled
    /// waveform. `design` labels the report (usually the source path);
    /// `results` are the [`RunOutcome::cases`] of [`run`](Self::run).
    ///
    /// The caller may fill in [`EngineStats::verify_wall`] afterwards if
    /// it measured the run.
    #[must_use]
    pub fn report(&self, design: impl Into<String>, results: &[CaseResult]) -> Report {
        Report {
            design: design.into(),
            cases: results.to_vec(),
            engine: EngineStats {
                signals: self.netlist.signals().len(),
                prims: self.netlist.prims().len(),
                cases: results.len(),
                jobs: self.jobs,
                case_strategy: self.last_strategy,
                events: self.total_events,
                evaluations: self.total_evaluations,
                verify_wall: None,
                eval_cache: self.eval_cache.as_ref().map(|c| c.stats()),
            },
            slack: self.slack_report(),
            storage: self.storage_report(),
            assumed_stable: self.assumed_stable_names(),
            clock_driver_notes: self.clock_driver_notes(),
            waves: self.sorted_waves(),
            period: self.netlist.config().timing.period,
            probabilistic: None,
        }
    }
}

/// The default worker budget for [`Verifier::run`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies a case override to a computed state: the override replaces the
/// signal's value wherever the circuit would leave it merely *stable*
/// (§2.7.1) — asserted changing windows and computed constants win.
fn override_state(over: Option<Value>, state: StateRef<'_>) -> SignalState {
    match over {
        None => state.to_state(),
        Some(v) => SignalState {
            wave: state
                .wave
                .map(|x| if x == Value::Stable { v } else { x })
                .into(),
            skew: state.skew,
            eval: state.eval.clone(),
        },
    }
}

/// Immutable inputs of one settle loop, shared by the base settle (the
/// engine's struct-of-arrays state) and the per-case settle (cone
/// overlays).
struct WaveParams<'a> {
    netlist: &'a Netlist,
    pinned: &'a [bool],
    overrides: &'a BTreeMap<SignalId, Value>,
    budget: u64,
    /// Wave-evaluation workers; 1 keeps everything on this thread.
    jobs: usize,
    /// Delay corner every evaluation collapses its delay ranges at.
    corner: DelayCorner,
    /// Case index for trace events; `None` for the base settle.
    case: Option<u32>,
    trace: Option<&'a dyn TraceSink>,
    /// Evaluation memo table plus per-primitive descriptor signatures;
    /// `None` when caching is disabled.
    cache: Option<(&'a EvalCache, &'a [Option<u32>])>,
}

/// What the serial commit phase must do for one wave entry — precomputed
/// during the (possibly parallel) evaluation phase against the frozen
/// pre-wave state, so the serial residue only *applies* effects.
///
/// The precompute is sound for single-driver signals because a wave is a
/// deduplicated primitive list: a signal's sole driver appears at most
/// once per wave, so the frozen pre-wave `raw`/`eff` values it compared
/// against are exactly the live values at its commit slot. Wired-OR
/// buses (several drivers possibly in one wave) recombine against live
/// state and stay on the serial path.
enum CommitPlan {
    /// Nothing to apply: a checker, a pinned output, or an output whose
    /// recomputed state equals the committed one.
    Skip,
    /// The raw state changes but the effective (override-mapped) state
    /// does not: store the outcome's output, emit no event.
    Raw {
        /// The driven signal.
        out: SignalId,
    },
    /// Both raw and effective state change: store both, count an event,
    /// enqueue the fan-out.
    RawEff {
        /// The driven signal.
        out: SignalId,
        /// The already-override-mapped effective state.
        new_eff: SignalState,
    },
    /// A wired-OR bus: must be recombined serially against the live
    /// contribution map.
    Wired {
        /// The driven signal.
        out: SignalId,
    },
}

/// Plans the commit of one evaluated primitive against the frozen
/// pre-wave state. See [`CommitPlan`] for the soundness argument.
fn plan_commit<R, E>(
    p: &WaveParams<'_>,
    pid: PrimId,
    outcome: &EvalOutcome,
    raw: &R,
    eff: &E,
) -> CommitPlan
where
    R: StateView + ?Sized,
    E: StateView + ?Sized,
{
    let prim = p.netlist.prim(pid);
    let (Some(new_state), Some(out)) = (&outcome.output, prim.output) else {
        return CommitPlan::Skip;
    };
    if p.pinned[out.index()] {
        return CommitPlan::Skip; // asserted clocks keep their asserted value
    }
    if p.netlist.drivers(out).len() > 1 {
        return CommitPlan::Wired { out };
    }
    if raw.state_at(out.index()) == *new_state {
        return CommitPlan::Skip;
    }
    let new_eff = override_state(p.overrides.get(&out).copied(), new_state.into());
    if eff.state_at(out.index()) == new_eff {
        CommitPlan::Raw { out }
    } else {
        CommitPlan::RawEff { out, new_eff }
    }
}

/// Mutable bookkeeping of one settle loop, borrowed from whoever owns
/// it (the [`Verifier`] for the base settle, the case worker's locals
/// for a case settle). `events`/`evaluations` accumulate even when the
/// loop errors out, so callers can fold partial effort into totals.
struct WaveBooks<'a> {
    hazards: &'a mut BTreeSet<(PrimId, usize)>,
    wired: &'a mut BTreeMap<(SignalId, PrimId), SignalState>,
    queue: &'a mut VecDeque<PrimId>,
    queued: &'a mut [bool],
    events: &'a mut u64,
    evaluations: &'a mut u64,
}

/// One level-synchronized settle loop — the wave engine. Each iteration
/// drains the worklist into a deduplicated wave, evaluates every
/// primitive of the wave against the frozen pre-wave state
/// (concurrently when `jobs` allows), then commits the results on this
/// thread in primitive-id order.
///
/// Determinism: an evaluation reads only state committed by *previous*
/// waves, so in-wave evaluation order is unobservable; the serial,
/// sorted commit makes event emission, wired-OR recombination, hazard
/// recording and fan-out enqueueing identical for every worker count.
/// The oscillation budget is charged per committed evaluation, and a
/// budget overrun aborts *before* the offending primitive's effects are
/// applied — exactly the single-worklist engine's semantics. A commit
/// that changes a signal read by a later member of the same wave simply
/// re-enqueues that member: its stale result is committed now and
/// corrected next wave, which cannot change the fixed point because
/// evaluation is a pure function of the inputs.
fn settle_waves<R, E>(
    p: &WaveParams<'_>,
    books: WaveBooks<'_>,
    raw: &mut R,
    eff: &mut E,
) -> Result<(), VerifyError>
where
    R: StateStore + ?Sized,
    E: StateStore + ?Sized,
{
    let WaveBooks {
        hazards,
        wired,
        queue,
        queued,
        events,
        evaluations,
    } = books;
    let period = p.netlist.config().timing.period;
    // More workers than hardware threads measures nothing but spawn
    // overhead, so an oversized `--jobs` is capped here; the trajectory
    // is worker-count-independent either way.
    let wave_jobs = p
        .jobs
        .min(std::thread::available_parallelism().map_or(1, usize::from));
    let mut wave_ordinal = 0u64;
    // Wave-local scratch, reused across waves: after the first few waves
    // the settle loop allocates nothing proportional to the wave width.
    let mut wave: Vec<PrimId> = Vec::new();
    let mut outcomes: Vec<EvalOutcome> = Vec::new();
    let mut plans: Vec<CommitPlan> = Vec::new();
    while !queue.is_empty() {
        wave.clear();
        wave.extend(queue.drain(..));
        for pid in &wave {
            queued[pid.index()] = false;
        }
        // Commit in primitive-id order: canonical, and independent of
        // how last wave's commits happened to interleave enqueues.
        wave.sort_unstable();
        evaluate_wave(p, &wave, &*raw, &*eff, wave_jobs, &mut outcomes, &mut plans);
        for i in 0..wave.len() {
            let pid = wave[i];
            *evaluations += 1;
            if let Some(t) = p.trace {
                t.record(&TraceEvent::Evaluation {
                    case: p.case,
                    prim: pid.index() as u32,
                    name: &p.netlist.prim(pid).name,
                    ordinal: *evaluations,
                    queue_depth: wave.len() - i - 1 + queue.len(),
                });
            }
            if *evaluations > p.budget {
                // Everything not yet committed is still active: the rest
                // of this wave (the offender included) plus the queue.
                let active: Vec<String> = wave[i..]
                    .iter()
                    .chain(queue.iter())
                    .take(8)
                    .map(|&prim| p.netlist.prim(prim).name.clone())
                    .collect();
                return Err(VerifyError::Oscillation {
                    evaluations: *evaluations,
                    active,
                });
            }
            for idx in &outcomes[i].hazard_inputs {
                hazards.insert((pid, *idx));
            }
            let (out, new_eff) = match std::mem::replace(&mut plans[i], CommitPlan::Skip) {
                CommitPlan::Skip => continue,
                CommitPlan::Raw { out } => {
                    let new_state = outcomes[i].output.take().expect("Raw plan has an output");
                    raw.set_state(out.index(), new_state);
                    continue;
                }
                CommitPlan::RawEff { out, new_eff } => {
                    let new_state = outcomes[i]
                        .output
                        .take()
                        .expect("RawEff plan has an output");
                    raw.set_state(out.index(), new_state);
                    (out, new_eff)
                }
                CommitPlan::Wired { out } => {
                    // Wired-OR buses: this driver contributes one term;
                    // the signal's state is the worst-case OR of all
                    // drivers, recombined against the live contribution
                    // map (another driver may have committed this wave).
                    let new_state = outcomes[i].output.take().expect("Wired plan has an output");
                    wired.insert((out, pid), new_state);
                    let resolved: Vec<WaveRef> = p
                        .netlist
                        .drivers(out)
                        .iter()
                        .map(|d| {
                            wired.get(&(out, *d)).map_or_else(
                                || Waveform::constant(period, Value::Unknown).into(),
                                SignalState::resolved,
                            )
                        })
                        .collect();
                    let refs: Vec<&Waveform> = resolved.iter().map(WaveRef::as_wave).collect();
                    let new_state = SignalState::new(Waveform::combine_many(&refs, |vals| {
                        scald_logic::or_all(vals.iter().copied())
                    }));
                    if raw.state_at(out.index()) == new_state {
                        continue;
                    }
                    let new_eff =
                        override_state(p.overrides.get(&out).copied(), (&new_state).into());
                    raw.set_state(out.index(), new_state);
                    if eff.state_at(out.index()) == new_eff {
                        continue;
                    }
                    (out, new_eff)
                }
            };
            eff.set_state(out.index(), new_eff);
            *events += 1;
            if let Some(t) = p.trace {
                t.record(&TraceEvent::SignalSettled {
                    case: p.case,
                    signal: out.index() as u32,
                    name: &p.netlist.signal(out).name,
                    ordinal: *evaluations,
                });
            }
            for &fan in p.netlist.fanout(out) {
                if !queued[fan.index()] {
                    queued[fan.index()] = true;
                    queue.push_back(fan);
                }
            }
        }
        wave_ordinal += 1;
        if let Some(t) = p.trace {
            t.record(&TraceEvent::Wave {
                case: p.case,
                ordinal: wave_ordinal,
                size: wave.len(),
                queue_depth: queue.len(),
            });
        }
    }
    Ok(())
}

/// Evaluates every primitive of `wave` against the frozen pre-wave
/// state and plans its commit, fanning across a scoped worker pool when
/// `jobs` allows. `outcomes` and `plans` are caller-owned scratch,
/// cleared and refilled indexed like `wave` regardless of which worker
/// computed which entry — callers observe nothing but the wall-clock.
///
/// Workers claim contiguous *chunks* of the wave (not single slots) and
/// write results in place through per-chunk locks, so synchronization
/// and allocation are per chunk, not per primitive.
///
/// With a `cache`, each evaluation first checks the memo table: because
/// `evaluate` is a pure function of the primitive descriptor (interned
/// as the signature) and the input states (interned wave handles, skew,
/// eval string), a hit returns the identical outcome the kernel would
/// recompute — serving from cache is unobservable in every result.
fn evaluate_wave<R, E>(
    p: &WaveParams<'_>,
    wave: &[PrimId],
    raw: &R,
    eff: &E,
    jobs: usize,
    outcomes: &mut Vec<EvalOutcome>,
    plans: &mut Vec<CommitPlan>,
) where
    R: StateView + ?Sized,
    E: StateView + ?Sized,
{
    let netlist = p.netlist;
    let eval_one = |pid: PrimId| -> EvalOutcome {
        let prim = netlist.prim(pid);
        if let Some((cache, sigs)) = p.cache {
            if let Some(sig) = sigs[pid.index()] {
                let key = EvalCache::key_for(sig, prim, eff, p.corner);
                if let Some(hit) = cache.lookup(&key) {
                    return hit;
                }
                let out = evaluate(netlist, prim, eff, p.corner);
                cache.insert(key, &out);
                return out;
            }
        }
        evaluate(netlist, prim, eff, p.corner)
    };
    outcomes.clear();
    plans.clear();
    let workers = jobs.min(wave.len());
    if workers <= 1 {
        for &pid in wave {
            let out = eval_one(pid);
            plans.push(plan_commit(p, pid, &out, raw, eff));
            outcomes.push(out);
        }
        return;
    }
    outcomes.resize_with(wave.len(), || EvalOutcome {
        output: None,
        hazard_inputs: Vec::new(),
    });
    plans.resize_with(wave.len(), || CommitPlan::Skip);
    // A few chunks per worker balances uneven evaluation costs without
    // per-primitive synchronization.
    type Slot<'w> = Mutex<(&'w [PrimId], &'w mut [EvalOutcome], &'w mut [CommitPlan])>;
    let chunk = wave.len().div_ceil(workers * 4).max(8);
    let slots: Vec<Slot<'_>> = wave
        .chunks(chunk)
        .zip(outcomes.chunks_mut(chunk))
        .zip(plans.chunks_mut(chunk))
        .map(|((w, o), pl)| Mutex::new((w, o, pl)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= slots.len() {
                    break;
                }
                let mut slot = slots[c].lock().expect("wave chunk poisoned");
                let (pids, outs, pls) = &mut *slot;
                for i in 0..pids.len() {
                    let out = eval_one(pids[i]);
                    pls[i] = plan_commit(p, pids[i], &out, raw, eff);
                    outs[i] = out;
                }
            });
        }
    });
}

/// Everything one case worker produced: the check results, its effort
/// counters, and the dirtied-cone overlays needed to install the case's
/// state back into the [`Verifier`].
struct CaseOutcome {
    violations: Vec<Violation>,
    events: u64,
    evaluations: u64,
    value_records: usize,
    /// Checker units evaluated / inherited for this case's check pass.
    check_evals: u64,
    check_hits: u64,
    /// Signals measured / inherited for this case's storage accounting.
    storage_evals: u64,
    storage_hits: u64,
    /// Dirtied (index, state) pairs in index order.
    raw_overlay: Vec<(usize, SignalState)>,
    eff_overlay: Vec<(usize, SignalState)>,
    hazards: BTreeSet<(PrimId, usize)>,
    wired: BTreeMap<(SignalId, PrimId), SignalState>,
    overrides: BTreeMap<SignalId, Value>,
}

/// One unit of dependency-scheduled work in a tree run: settling an
/// internal prefix node, or settling one leaf case. A unit becomes
/// runnable when its parent node settles (roots and node-less leaves
/// are runnable immediately); workers release a settled node's children
/// the moment it completes, so prefix settles overlap leaf suffixes
/// under one `--jobs` budget.
#[derive(Debug, Clone, Copy)]
enum Unit {
    Node(usize),
    Leaf(usize),
}

/// The run's cases organized as a trie on shared assignment prefixes,
/// plus one root per non-default delay corner. Internal nodes are
/// settled once, in `nodes` order (parents strictly before children);
/// `leaves` carry each case's residual suffix.
struct CaseTree {
    nodes: Vec<TreeNode>,
    leaves: Vec<LeafTask>,
}

/// One internal trie node: the assignments it adds on top of its parent.
struct TreeNode {
    /// Parent node index; `None` roots directly on the settled base.
    parent: Option<usize>,
    /// The new `(signal, value)` assignments this node applies.
    chunk: Vec<(SignalId, Value)>,
    /// Delay corner of the whole subtree (cases are grouped by corner).
    corner: DelayCorner,
    /// Whether this node's settle must re-evaluate every primitive: the
    /// root of a non-worst corner group, where every delay changes.
    reseed_all: bool,
    /// Descendant leaf cases, for the `PrefixSettled` trace event.
    leaf_count: usize,
}

/// One case's residual work after its deepest shared prefix.
struct LeafTask {
    /// Input case index.
    case: usize,
    /// The node whose settled overlay the leaf forks; `None` settles
    /// directly from the base (no shared prefix, worst-case corner).
    node: Option<usize>,
    /// Where in the case's resolved assignments the unshared suffix
    /// starts.
    suffix_start: usize,
}

impl CaseTree {
    /// Organizes resolved cases into the trie: group by corner, sort
    /// each group by assignment list (tie-broken by input index so the
    /// structure is deterministic), and recursively split on the
    /// longest shared prefix. A prefix node is created only when ≥ 2
    /// cases share it; every non-worst corner group gets a root node so
    /// the full corner re-settle is paid once per corner, not per case.
    fn build(resolved: &[Vec<(SignalId, Value)>], corners: &[DelayCorner]) -> CaseTree {
        let mut tree = CaseTree {
            nodes: Vec::new(),
            leaves: Vec::new(),
        };
        let mut groups: BTreeMap<DelayCorner, Vec<usize>> = BTreeMap::new();
        for (i, &corner) in corners.iter().enumerate().take(resolved.len()) {
            groups.entry(corner).or_default().push(i);
        }
        // Comparison key: `Value` here is only ever One/Zero, so the
        // pair (signal index, is-one) sorts assignment lists totally.
        let key = |case: usize| -> Vec<(usize, bool)> {
            resolved[case]
                .iter()
                .map(|&(sid, v)| (sid.index(), v == Value::One))
                .collect()
        };
        for (corner, mut idxs) in groups {
            idxs.sort_by(|&a, &b| key(a).cmp(&key(b)).then(a.cmp(&b)));
            let root = if corner == DelayCorner::Worst {
                None
            } else {
                tree.nodes.push(TreeNode {
                    parent: None,
                    chunk: Vec::new(),
                    corner,
                    reseed_all: true,
                    leaf_count: idxs.len(),
                });
                Some(tree.nodes.len() - 1)
            };
            tree.split(resolved, corner, &idxs, 0, root);
        }
        tree
    }

    /// Recursively splits a sorted case group whose members all share
    /// `depth` leading assignments already applied by `parent`.
    fn split(
        &mut self,
        resolved: &[Vec<(SignalId, Value)>],
        corner: DelayCorner,
        idxs: &[usize],
        depth: usize,
        parent: Option<usize>,
    ) {
        let mut i = 0;
        while i < idxs.len() {
            let case = idxs[i];
            if resolved[case].len() == depth {
                // No assignments left: the case *is* its prefix.
                self.leaves.push(LeafTask {
                    case,
                    node: parent,
                    suffix_start: depth,
                });
                i += 1;
                continue;
            }
            // The sort makes cases agreeing at `depth` contiguous.
            let head = resolved[case][depth];
            let mut j = i + 1;
            while j < idxs.len()
                && resolved[idxs[j]].len() > depth
                && resolved[idxs[j]][depth] == head
            {
                j += 1;
            }
            if j - i == 1 {
                // Nothing shares this prefix: leaf directly on `parent`.
                self.leaves.push(LeafTask {
                    case,
                    node: parent,
                    suffix_start: depth,
                });
            } else {
                // Extend the shared prefix as far as the group agrees.
                let group = &idxs[i..j];
                let mut end = depth + 1;
                while let Some(next) = resolved[case].get(end) {
                    if group.iter().all(|&c| resolved[c].get(end) == Some(next)) {
                        end += 1;
                    } else {
                        break;
                    }
                }
                self.nodes.push(TreeNode {
                    parent,
                    chunk: resolved[case][depth..end].to_vec(),
                    corner,
                    reseed_all: false,
                    leaf_count: group.len(),
                });
                let node = Some(self.nodes.len() - 1);
                self.split(resolved, corner, group, end, node);
            }
            i = j;
        }
    }
}

/// A settled internal tree node: the forked overlays and bookkeeping
/// every descendant (node or leaf) builds on.
struct NodeState<'a> {
    raw: ConeState<'a>,
    eff: ConeState<'a>,
    hazards: BTreeSet<(PrimId, usize)>,
    wired: BTreeMap<(SignalId, PrimId), SignalState>,
    /// Cumulative overrides from the root down to this node.
    overrides: BTreeMap<SignalId, Value>,
    /// A settle failure here (or above) fails every descendant leaf.
    error: Option<VerifyError>,
    /// Empty-verdict summary of this node's checker pass, computed once
    /// after the settle (chained as a delta off the parent's pass);
    /// `None` when the settle failed. Descendants re-check only units
    /// inside their dirty cone and inherit the rest from here.
    cache: Option<CheckCache>,
    /// Total value-record count of this node's raw state, so leaves pay
    /// a cone-sized storage delta instead of a full measure.
    value_records: usize,
}

/// Parent context for a memoized per-case checker/storage pass: the
/// cached results of the prefix node (or the settled base) a leaf forked
/// from.
struct LeafMemo<'a> {
    /// The parent pass's empty-verdict summary.
    cache: &'a CheckCache,
    /// The parent's hazard set (a hazard unit new to the leaf was never
    /// checked by the parent and must be evaluated).
    hazards: &'a BTreeSet<(PrimId, usize)>,
    /// The parent's raw/effective states, for dirty-cone diffs.
    raw_parent: &'a dyn StateView,
    eff_parent: &'a dyn StateView,
    /// The parent's total value-record count.
    value_records: usize,
}

/// Human-readable label of a tree node's cumulative overrides, for the
/// `PrefixSettled` trace event.
fn node_label(
    netlist: &Netlist,
    corner: DelayCorner,
    overrides: &BTreeMap<SignalId, Value>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    if corner != DelayCorner::Worst {
        parts.push(format!("corner={corner}"));
    }
    parts.extend(overrides.iter().map(|(sid, v)| {
        format!(
            "{} = {}",
            netlist.signal(*sid).name,
            u8::from(*v == Value::One)
        )
    }));
    if parts.is_empty() {
        "no overrides".to_owned()
    } else {
        parts.join("; ")
    }
}

/// One incremental settle on top of an existing overlay: seeds the new
/// assignments (diffing the effective state through the overlay, so a
/// leaf re-seeds exactly the signals whose override map changed since
/// its node settled), optionally re-enqueues every primitive (corner
/// roots, where every delay changes), and runs the wave loop to the
/// fixed point. Effort accumulates into `events`/`evaluations` even on
/// the error path.
#[allow(clippy::too_many_arguments)]
fn settle_overlay(
    netlist: &Netlist,
    pinned: &[bool],
    raw: &mut ConeState<'_>,
    eff: &mut ConeState<'_>,
    hazards: &mut BTreeSet<(PrimId, usize)>,
    wired: &mut BTreeMap<(SignalId, PrimId), SignalState>,
    seeds: &[(SignalId, Value)],
    overrides: &BTreeMap<SignalId, Value>,
    corner: DelayCorner,
    reseed_all: bool,
    budget: u64,
    wave_jobs: usize,
    cache: Option<(&EvalCache, &[Option<u32>])>,
    trace: Option<(&dyn TraceSink, Option<u32>)>,
    events: &mut u64,
    evaluations: &mut u64,
) -> Result<(), VerifyError> {
    let mut queue: VecDeque<PrimId> = VecDeque::new();
    let mut queued = vec![false; netlist.prims().len()];

    // Seed: apply the new overrides (in SignalId order) and dirty their
    // fan-out cones.
    for &(sid, v) in seeds {
        let new_eff = override_state(Some(v), raw.state_at(sid.index()));
        if eff.state_at(sid.index()) != new_eff {
            eff.set(sid.index(), new_eff);
            for &pid in netlist.fanout(sid) {
                if !queued[pid.index()] {
                    queued[pid.index()] = true;
                    queue.push_back(pid);
                }
            }
        }
    }
    if reseed_all {
        for (pid, _) in netlist.iter_prims() {
            if !queued[pid.index()] {
                queued[pid.index()] = true;
                queue.push_back(pid);
            }
        }
    }

    settle_waves(
        &WaveParams {
            netlist,
            pinned,
            overrides,
            budget,
            jobs: wave_jobs,
            corner,
            case: trace.and_then(|(_, c)| c),
            trace: trace.map(|(t, _)| t),
            cache,
        },
        WaveBooks {
            hazards,
            wired,
            queue: &mut queue,
            queued: &mut queued,
            events,
            evaluations,
        },
        raw,
        eff,
    )
}

/// Runs the check pass over a settled overlay and packages everything
/// the merge step needs back into a [`CaseOutcome`].
///
/// With `memo: Some`, the checker pass runs as a dirty-cone delta
/// against the parent's cached pass and storage accounting as a records
/// delta against the parent's total — byte-identical to the full pass
/// (see `run_checks_cached` and `ConeState::value_records_vs` for the
/// argument) while evaluating only units the suffix settle touched.
#[allow(clippy::too_many_arguments)]
fn case_outcome(
    netlist: &Netlist,
    corner: DelayCorner,
    raw: ConeState<'_>,
    eff: ConeState<'_>,
    hazards: BTreeSet<(PrimId, usize)>,
    wired: BTreeMap<(SignalId, PrimId), SignalState>,
    overrides: BTreeMap<SignalId, Value>,
    events: u64,
    evaluations: u64,
    memo: Option<&LeafMemo<'_>>,
) -> CaseOutcome {
    let hazard_list: Vec<(PrimId, usize)> = hazards.iter().copied().collect();
    let signals = netlist.signals().len() as u64;
    let (pass, value_records, storage_evals) = match memo {
        Some(m) => {
            let dirty = eff.dirty_vs(m.eff_parent);
            let pass = run_checks_cached(
                netlist,
                &eff,
                &hazard_list,
                corner,
                Some(&CheckMemo {
                    cache: m.cache,
                    hazards: m.hazards,
                    dirty: &dirty,
                }),
            );
            let (value_records, examined) = raw.value_records_vs(m.raw_parent, m.value_records);
            (pass, value_records, examined)
        }
        None => {
            let pass = run_checks_cached(netlist, &eff, &hazard_list, corner, None);
            let value_records = StorageReport::measure(netlist, &raw).value_records;
            (pass, value_records, signals)
        }
    };
    CaseOutcome {
        violations: pass.violations,
        events,
        evaluations,
        value_records,
        check_evals: pass.evaluated,
        check_hits: pass.inherited,
        storage_evals,
        storage_hits: signals.saturating_sub(storage_evals),
        raw_overlay: raw.into_overlay(),
        eff_overlay: eff.into_overlay(),
        hazards,
        wired,
        overrides,
    }
}

/// Settles one case against the shared settled base state (§2.7, §3.3.2).
///
/// This is the per-case unit of work for both the serial path and the
/// worker pool: it reads the base immutably, re-evaluates only the cone
/// the case's overrides dirty (on a [`ConeState`] copy-on-write overlay)
/// — or, at a non-worst delay corner, the whole design — and runs all
/// checks against the overlaid state. Because every input is the same
/// settled base and the worklist seeding order is fixed, the outcome is
/// a pure function of `(base, assigns, corner)` — which is what makes
/// parallel case analysis byte-identical to serial. (An attached trace
/// sink observes the work but cannot influence it; `wave_jobs` changes
/// only who computes each wave entry, never any result.)
#[allow(clippy::too_many_arguments)]
fn settle_case(
    netlist: &Netlist,
    base_raw: &SoaState,
    base_eff: &SoaState,
    pinned: &[bool],
    base_hazards: &BTreeSet<(PrimId, usize)>,
    base_wired: &BTreeMap<(SignalId, PrimId), SignalState>,
    assigns: &[(SignalId, Value)],
    corner: DelayCorner,
    budget: u64,
    wave_jobs: usize,
    cache: Option<(&EvalCache, &[Option<u32>])>,
    trace: Option<(&dyn TraceSink, u32)>,
    memo: Option<&LeafMemo<'_>>,
) -> Result<CaseOutcome, VerifyError> {
    let overrides: BTreeMap<SignalId, Value> = assigns.iter().copied().collect();
    let mut raw = ConeState::new(base_raw);
    let mut eff = ConeState::new(base_eff);
    let mut hazards = base_hazards.clone();
    let mut wired = base_wired.clone();
    let mut events = 0u64;
    let mut evaluations = 0u64;
    settle_overlay(
        netlist,
        pinned,
        &mut raw,
        &mut eff,
        &mut hazards,
        &mut wired,
        assigns,
        &overrides,
        corner,
        corner != DelayCorner::Worst,
        budget,
        wave_jobs,
        cache,
        trace.map(|(t, c)| (t, Some(c))),
        &mut events,
        &mut evaluations,
    )?;
    Ok(case_outcome(
        netlist,
        corner,
        raw,
        eff,
        hazards,
        wired,
        overrides,
        events,
        evaluations,
        memo,
    ))
}

/// Settles one case-tree leaf: forks its node's settled overlay and
/// settles only the suffix of assignments the prefix didn't already
/// apply. The resulting fixed point — and therefore the leaf's
/// violations, waveforms and value-record counts — is byte-identical to
/// [`settle_case`] from the base with the full assignment list, because
/// the settle's fixed point is unique and the seed diff re-dirties
/// exactly the signals whose override mapping changed (see DESIGN.md
/// § "The case tree" for the argument).
#[allow(clippy::too_many_arguments)]
fn settle_leaf(
    netlist: &Netlist,
    pinned: &[bool],
    node: &NodeState<'_>,
    assigns: &[(SignalId, Value)],
    suffix_start: usize,
    corner: DelayCorner,
    budget: u64,
    wave_jobs: usize,
    cache: Option<(&EvalCache, &[Option<u32>])>,
    trace: Option<(&dyn TraceSink, u32)>,
) -> Result<CaseOutcome, VerifyError> {
    if let Some(e) = &node.error {
        return Err(e.clone());
    }
    let overrides: BTreeMap<SignalId, Value> = assigns.iter().copied().collect();
    let mut raw = node.raw.fork();
    let mut eff = node.eff.fork();
    let mut hazards = node.hazards.clone();
    let mut wired = node.wired.clone();
    let mut events = 0u64;
    let mut evaluations = 0u64;
    settle_overlay(
        netlist,
        pinned,
        &mut raw,
        &mut eff,
        &mut hazards,
        &mut wired,
        &assigns[suffix_start..],
        &overrides,
        corner,
        false,
        budget,
        wave_jobs,
        cache,
        trace.map(|(t, c)| (t, Some(c))),
        &mut events,
        &mut evaluations,
    )?;
    // Inherit the node's cached checker verdicts and storage total; the
    // leaf re-checks only units its suffix settle dirtied. A settled
    // node always carries a cache (built right after its settle).
    let memo = node.cache.as_ref().map(|cache| LeafMemo {
        cache,
        hazards: &node.hazards,
        raw_parent: &node.raw,
        eff_parent: &node.eff,
        value_records: node.value_records,
    });
    Ok(case_outcome(
        netlist,
        corner,
        raw,
        eff,
        hazards,
        wired,
        overrides,
        events,
        evaluations,
        memo.as_ref(),
    ))
}

/// Checks that the interface signals of separately verified design
/// sections carry consistent assertions (§2.5.2): "after each section is
/// verified, SCALD checks to see that all interface signals have the same
/// timing assertions on them. If no section … has a timing error and if
/// all of the interface signals … have consistent assertions, then the
/// entire design must be free of timing errors."
///
/// Returns one message per inconsistency: a signal name appearing in two
/// sections with differing assertions (including asserted in one and
/// unasserted in the other).
#[must_use]
pub fn check_interfaces(sections: &[&Netlist]) -> Vec<String> {
    use scald_assertions::Assertion;
    // BTreeMap as structural hardening: `seen`'s order never escapes
    // today (problems follow section/signal input order), but a map that
    // feeds a user-facing listing must not depend on `RandomState`.
    let mut seen: BTreeMap<String, (usize, Option<Assertion>)> = BTreeMap::new();
    let mut problems = Vec::new();
    for (idx, section) in sections.iter().enumerate() {
        for (_, sig) in section.iter_signals() {
            match seen.get(&sig.name) {
                None => {
                    seen.insert(sig.name.clone(), (idx, sig.assertion.clone()));
                }
                Some((first_idx, first)) if *first != sig.assertion => {
                    let show = |a: &Option<Assertion>| {
                        a.as_ref()
                            .map_or_else(|| "(no assertion)".to_owned(), ToString::to_string)
                    };
                    problems.push(format!(
                        "interface signal {:?}: section {} asserts {}, \
                         section {} asserts {}",
                        sig.name,
                        first_idx + 1,
                        show(first),
                        idx + 1,
                        show(&sig.assertion)
                    ));
                }
                Some(_) => {}
            }
        }
    }
    problems
}
