//! The SCALD Timing Verifier: exhaustive, value-independent verification of
//! timing constraints on synchronous sequential digital systems.
//!
//! This crate is a from-scratch implementation of the system described in
//! T. M. McWilliams, *Verification of Timing Constraints on Large Digital
//! Systems* (Stanford / LLNL, 1980). The approach simulates **one clock
//! period** of the circuit symbolically, tracking only *when* signals can
//! change — not whether they are true or false — via a seven-value algebra
//! (`0 1 S C R F U`). That single symbolic pass covers all of the state
//! transitions a conventional logic simulator would need exponentially many
//! input patterns to exercise (§2.1).
//!
//! What it checks:
//!
//! * set-up and hold times (`SETUP HOLD CHK`, `SETUP RISE HOLD FALL CHK`),
//! * minimum pulse widths,
//! * hazards on gated clocks via the `&A`/`&H` evaluation directives, and
//! * the designer's stable assertions on generated signals.
//!
//! Supporting machinery from the thesis: separated skew (§2.8), evaluation
//! directives that propagate through levels of gating (§2.6), case analysis
//! with incremental re-evaluation (§2.7), the assumed-stable cross-reference
//! listing (§2.5), and storage/event statistics matching Tables 3-1 and 3-3.
//!
//! # Parallel settling and case analysis
//!
//! [`Verifier::run`] is the single entry point: it settles the base
//! (no-override) state once, then fans the per-case incremental
//! re-evaluations of §2.7 across a `std::thread::scope` worker pool
//! (`--jobs` in `scald-tv`). Each case worker reads the settled base
//! immutably and re-evaluates only the cone its case's overrides dirty,
//! on a private copy-on-write overlay — no locks are held during
//! evaluation, and no external crates are involved.
//!
//! The settle loop itself is parallel too: it is *level-synchronized*,
//! draining the worklist into deduplicated waves, evaluating each wave
//! concurrently against the frozen pre-wave state, and committing
//! results serially in primitive-id order. One worker budget
//! ([`VerifierBuilder::jobs`], overridable per run with
//! [`RunOptions::jobs`]) covers both dimensions — nested settles split
//! it rather than oversubscribing.
//!
//! **Determinism guarantee:** every evaluation in a wave reads only
//! state committed by previous waves, every case is computed by the same
//! pure procedure from the same settled base, and results are merged in
//! input order — so waveforms, violation lists, report JSON and
//! per-case trace streams are byte-identical for every worker count
//! (`tests/parallel_settle.rs` proves it over seeded designs). The only
//! scheduling-sensitive quantities are the *cumulative* effort counters
//! ([`Verifier::total_events`], [`Verifier::total_evaluations`]) on the
//! error path, which count whatever work actually completed.
//!
//! # Quickstart
//!
//! ```
//! use scald_netlist::{Config, NetlistBuilder};
//! use scald_verifier::{RunOptions, Verifier, ViolationKind};
//! use scald_wave::{DelayRange, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new(Config::s1_example());
//! let clk = b.signal("CLK .P0-2")?;           // clock high units 0-2
//! let d = b.signal_vec("DATA .S7-8", 32)?;    // stable only 7-8: too late!
//! let q = b.signal_vec("Q", 32)?;
//! b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
//! b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
//!
//! let mut verifier = Verifier::new(b.finish()?);
//! let outcome = verifier.run(&RunOptions::new())?;
//! assert_eq!(outcome.sole().of_kind(ViolationKind::Setup).len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
pub use cache::{EvalCache, EvalCacheStats};
mod caseset;
pub use caseset::CaseSet;
mod checkers;
pub use checkers::CheckMargin;
mod diagram;
mod engine;
mod eval;
mod report;
mod state;
mod storage;
mod view;

pub use diagram::render_diagram;
pub use engine::{
    check_interfaces, BaseResult, Case, CaseStrategy, CheckpointPolicy, MemoStats, MultiCaseError,
    PrefixStats, RunOptions, RunOutcome, Verifier, VerifierBuilder, VerifyError,
};
pub use report::{
    CaseResult, EngineStats, ProbEndpoint, ProbSection, Provenance, ProvenanceHop, Report,
    Violation, ViolationKind, REPORT_SCHEMA, REPORT_VERSION,
};
pub use state::{Directive, EvalStr, SignalState};
pub use storage::StorageReport;

// Re-exported so `CaseSet::corners`/`Case::corner` callers need not
// depend on `scald-wave` directly.
pub use scald_wave::DelayCorner;
