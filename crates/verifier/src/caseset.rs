//! Sweep construction for case analysis (§2.7): the [`CaseSet`] builder.
//!
//! The thesis' case analysis takes a hand-enumerated list of
//! `signal = 0/1` assignment sets. At modern scale the list is almost
//! always *generated* — an exhaustive sweep over mode bits, a cross
//! product of independent axes, a min/typ/max delay-corner sweep — so
//! [`RunOptions::cases`](crate::RunOptions::cases) accepts a `CaseSet`
//! built by the constructors here instead of a hand-rolled `Vec<Case>`.
//!
//! Generated sweeps also carry structure the engine can exploit: cases
//! built by [`CaseSet::exhaustive`]/[`CaseSet::product`] share long
//! assignment prefixes, which the case-tree engine settles once per
//! prefix instead of once per case (see DESIGN.md § "The case tree").
//!
//! ```
//! use scald_verifier::{Case, CaseSet};
//! use scald_wave::DelayCorner;
//!
//! // All four combinations of two mode bits...
//! let sweep = CaseSet::exhaustive(["MODE0", "MODE1"]);
//! assert_eq!(sweep.len(), 4);
//! assert_eq!(sweep.cases()[0].label(), "MODE0 = 0; MODE1 = 0");
//!
//! // ...at every delay corner.
//! let swept = sweep.cross_corners([DelayCorner::Min, DelayCorner::Max]);
//! assert_eq!(swept.len(), 8);
//! assert_eq!(swept.cases()[1].label(), "corner=max; MODE0 = 0; MODE1 = 0");
//! ```

use scald_wave::DelayCorner;

use crate::engine::Case;

/// An ordered set of [`Case`]s for one verification run — what
/// [`RunOptions::cases`](crate::RunOptions::cases) accepts.
///
/// Constructors: [`exhaustive`](Self::exhaustive) (all 0/1 combinations
/// of named signals), [`product`](Self::product) (cross product of
/// independent axes), [`corners`](Self::corners) (one case per delay
/// corner), [`list`](Self::list) (an explicit list). Sets compose:
/// [`cross_corners`](Self::cross_corners) crosses an existing set with
/// a corner axis.
///
/// The set is eager — constructors materialize the full `Vec<Case>` up
/// front — so [`exhaustive`](Self::exhaustive) refuses absurd widths
/// rather than exhaust memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaseSet {
    cases: Vec<Case>,
}

impl CaseSet {
    /// An explicit list of cases — the escape hatch when no generator
    /// fits. `CaseSet::list([])` is the empty set, which
    /// [`RunOptions::cases`](crate::RunOptions::cases) treats as "just
    /// the base case".
    pub fn list(cases: impl IntoIterator<Item = Case>) -> CaseSet {
        CaseSet {
            cases: cases.into_iter().collect(),
        }
    }

    /// Every 0/1 combination of the named signals: `2^n` cases for `n`
    /// signals, in binary counting order with the *last* signal varying
    /// fastest. No signals yields the single empty case.
    ///
    /// # Panics
    ///
    /// Panics if more than 20 signals are given (over a million cases)
    /// or if a signal name appears twice (the duplicate's cases would
    /// collide: two assignments per case to one signal, last one
    /// winning) — either is almost certainly a generator bug, not a
    /// sweep.
    pub fn exhaustive<I>(signals: I) -> CaseSet
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let signals: Vec<String> = signals.into_iter().map(Into::into).collect();
        let n = signals.len();
        assert!(
            n <= 20,
            "CaseSet::exhaustive over {n} signals would enumerate 2^{n} cases"
        );
        for (i, name) in signals.iter().enumerate() {
            assert!(
                !signals[..i].contains(name),
                "CaseSet::exhaustive names signal {name:?} twice"
            );
        }
        let cases = (0..1usize << n)
            .map(|i| {
                let mut case = Case::new();
                for (j, name) in signals.iter().enumerate() {
                    case = case.assign(name.clone(), (i >> (n - 1 - j)) & 1 == 1);
                }
                case
            })
            .collect();
        CaseSet { cases }
    }

    /// The cross product of independent axes: one case per combination,
    /// merging each axis' assignments, with *later* axes varying
    /// fastest. When two axes assign the same signal the later axis
    /// wins, and a later axis' explicit (non-worst) delay corner
    /// replaces an earlier one. An empty axis annihilates the product
    /// (no combinations exist); no axes yields the single empty case.
    pub fn product<I, A>(axes: I) -> CaseSet
    where
        I: IntoIterator<Item = A>,
        A: Into<CaseSet>,
    {
        let mut cases = vec![Case::new()];
        for axis in axes {
            let axis: CaseSet = axis.into();
            cases = cases
                .iter()
                .flat_map(|base| axis.cases.iter().map(|c| merge(base, c)))
                .collect();
        }
        CaseSet { cases }
    }

    /// One assignment-free case per delay corner, in the given order —
    /// the min/typ/max sweep of §1.4.1.2's delay-range discussion.
    pub fn corners(corners: impl IntoIterator<Item = DelayCorner>) -> CaseSet {
        CaseSet {
            cases: corners.into_iter().map(|c| Case::new().corner(c)).collect(),
        }
    }

    /// Crosses this set with a delay-corner axis: every case of `self`
    /// at every given corner, corners varying fastest.
    #[must_use]
    pub fn cross_corners(self, corners: impl IntoIterator<Item = DelayCorner>) -> CaseSet {
        CaseSet::product([self, CaseSet::corners(corners)])
    }

    /// Appends one case to the set.
    pub fn push(&mut self, case: Case) {
        self.cases.push(case);
    }

    /// The cases in run order.
    #[must_use]
    pub fn cases(&self) -> &[Case] {
        &self.cases
    }

    /// Consumes the set into its cases.
    #[must_use]
    pub fn into_cases(self) -> Vec<Case> {
        self.cases
    }

    /// Number of cases in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the set holds no cases (a run then analyses the implicit
    /// base case).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

/// Combines two cases: `a`'s assignments not re-assigned by `b`, then
/// `b`'s, with `b`'s explicit corner winning over `a`'s.
fn merge(a: &Case, b: &Case) -> Case {
    let mut out = Case::new();
    for (name, v) in a.assignments() {
        if !b.assignments().iter().any(|(bn, _)| bn == name) {
            out = out.assign(name.clone(), *v);
        }
    }
    for (name, v) in b.assignments() {
        out = out.assign(name.clone(), *v);
    }
    let corner = if b.delay_corner() == DelayCorner::Worst {
        a.delay_corner()
    } else {
        b.delay_corner()
    };
    out.corner(corner)
}

/// Compatibility shim for pre-`CaseSet` callers that hand-rolled a
/// `Vec<Case>`. Deprecated: build the set with a [`CaseSet`]
/// constructor instead ([`CaseSet::list`] is the direct translation);
/// this impl will be removed after one release.
impl From<Vec<Case>> for CaseSet {
    fn from(cases: Vec<Case>) -> CaseSet {
        CaseSet { cases }
    }
}

impl From<Case> for CaseSet {
    fn from(case: Case) -> CaseSet {
        CaseSet { cases: vec![case] }
    }
}

impl IntoIterator for CaseSet {
    type Item = Case;
    type IntoIter = std::vec::IntoIter<Case>;
    fn into_iter(self) -> Self::IntoIter {
        self.cases.into_iter()
    }
}

impl FromIterator<Case> for CaseSet {
    fn from_iter<I: IntoIterator<Item = Case>>(iter: I) -> CaseSet {
        CaseSet::list(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_counts_in_binary_with_last_signal_fastest() {
        let set = CaseSet::exhaustive(["A", "B"]);
        let labels: Vec<String> = set.cases().iter().map(Case::label).collect();
        assert_eq!(
            labels,
            [
                "A = 0; B = 0",
                "A = 0; B = 1",
                "A = 1; B = 0",
                "A = 1; B = 1",
            ]
        );
        assert_eq!(CaseSet::exhaustive(Vec::<String>::new()).len(), 1);
    }

    #[test]
    #[should_panic(expected = "names signal \"A\" twice")]
    fn exhaustive_rejects_duplicate_signals() {
        let _ = CaseSet::exhaustive(["A", "B", "A"]);
    }

    #[test]
    fn product_merges_axes_with_later_axis_winning() {
        let set = CaseSet::product([
            CaseSet::list([
                Case::new().assign("M", false),
                Case::new().assign("M", true),
            ]),
            CaseSet::list([Case::new().assign("N", true)]),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.cases()[1].label(), "M = 1; N = 1");

        let clash = CaseSet::product([
            CaseSet::list([Case::new().assign("M", false)]),
            CaseSet::list([Case::new().assign("M", true)]),
        ]);
        assert_eq!(clash.cases()[0].label(), "M = 1");

        let empty_axis = CaseSet::product([CaseSet::exhaustive(["A"]), CaseSet::list([])]);
        assert!(empty_axis.is_empty());
    }

    #[test]
    fn corner_sweeps_label_and_cross() {
        let set = CaseSet::corners(DelayCorner::ALL);
        assert_eq!(set.len(), 4);
        assert_eq!(set.cases()[0].label(), "no case overrides");
        assert_eq!(set.cases()[1].label(), "corner=min");

        let crossed =
            CaseSet::exhaustive(["A"]).cross_corners([DelayCorner::Min, DelayCorner::Max]);
        let labels: Vec<String> = crossed.cases().iter().map(Case::label).collect();
        assert_eq!(
            labels,
            [
                "corner=min; A = 0",
                "corner=max; A = 0",
                "corner=min; A = 1",
                "corner=max; A = 1",
            ]
        );
    }
}
