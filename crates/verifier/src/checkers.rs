//! Constraint checking: the post-fixed-point pass of §2.9 that examines
//! every checker primitive, every `&A`/`&H` gating directive, and every
//! stable assertion on a generated signal.

use scald_logic::Value;
use scald_netlist::{Netlist, PrimId, PrimKind, Primitive, Signal, SignalId};
use scald_wave::{edge_windows, pulses, DelayCorner, Edge, EdgeWindow, Span, Time, Waveform};
use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::eval::{pin_wave, pin_wave_pulse_view};
use crate::report::{Provenance, ProvenanceHop, Violation, ViolationKind};
use crate::view::StateView;

/// Fan-in walk caps: deep enough to cross several levels of gating, small
/// enough that a wide bus cone doesn't swamp the report.
const PROVENANCE_MAX_DEPTH: usize = 8;
const PROVENANCE_MAX_HOPS: usize = 24;

/// Walks the fan-in cone back from `anchor` (breadth-first) and records,
/// at each signal, the windows where it may be changing — the arrival
/// time it feeds forward. The walk stops at asserted signals (their
/// timing is a designer-stated fact, the §2.5 root-cause boundary) and
/// at undriven sources, and is capped by depth and hop count.
pub(crate) fn provenance_for<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    anchor: SignalId,
) -> Provenance {
    let mut hops = Vec::new();
    let mut truncated = false;
    let mut visited = BTreeSet::new();
    let mut queue = VecDeque::new();
    visited.insert(anchor);
    queue.push_back((anchor, 0usize));
    while let Some((sid, depth)) = queue.pop_front() {
        if hops.len() >= PROVENANCE_MAX_HOPS {
            truncated = true;
            break;
        }
        let sig = netlist.signal(sid);
        let driver = netlist.driver(sid);
        let wave = states.state_at(sid.index()).resolved();
        hops.push(ProvenanceHop {
            signal: sig.full_name(),
            depth,
            via: driver.map(|pid| netlist.prim(pid).name.clone()),
            arrival: wave.spans_where(|v| !v.is_quiescent()),
        });
        if driver.is_none() || sig.assertion.is_some() {
            continue;
        }
        if depth >= PROVENANCE_MAX_DEPTH {
            truncated = true;
            continue;
        }
        for pid in netlist.drivers(sid) {
            for input in netlist.prim(*pid).input_signals() {
                if visited.insert(input) {
                    queue.push_back((input, depth + 1));
                }
            }
        }
    }
    Provenance { hops, truncated }
}

/// Attaches the fan-in provenance of `anchor` to every violation in
/// `slice` — computed once per batch, only when a check actually fired.
fn attach_provenance<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    anchor: SignalId,
    slice: &mut [Violation],
) {
    if slice.is_empty() {
        return;
    }
    let p = provenance_for(netlist, states, anchor);
    for v in slice {
        v.provenance = Some(p.clone());
    }
}

/// How long `wave` has been quiescent immediately before instant `t`
/// (up to one full period). Zero if the signal may be changing just
/// before `t`.
fn quiescent_before(wave: &Waveform, t: Time) -> Time {
    let period = wave.period();
    let probe = (t - Time::from_ps(1)).rem_period(period);
    if !wave.value_at(probe).is_quiescent() {
        return Time::ZERO;
    }
    for q in wave.spans_where(Value::is_quiescent) {
        if q.is_full(period) {
            return period;
        }
        if q.contains(probe, period) {
            return (t - q.start()).rem_period(period);
        }
    }
    Time::ZERO
}

/// How long `wave` stays quiescent from instant `t` onward (up to one full
/// period). Zero if the signal may be changing at `t`.
fn quiescent_after(wave: &Waveform, t: Time) -> Time {
    let period = wave.period();
    let t = t.rem_period(period);
    if !wave.value_at(t).is_quiescent() {
        return Time::ZERO;
    }
    for q in wave.spans_where(Value::is_quiescent) {
        if q.is_full(period) {
            return period;
        }
        if q.contains(t, period) {
            let end = q.start() + q.width();
            return (end - t).rem_period(period).max(
                // t == q.start of a span whose width is the distance
                Time::ZERO,
            );
        }
    }
    Time::ZERO
}

fn observed_line(label: &str, name: &str, wave: &Waveform) -> String {
    format!("{label} = {name}: {wave}")
}

/// Emits an `UndefinedClock` diagnostic when a checker clock carries `U`
/// anywhere — a missing assertion or unconnected clock is far easier to
/// act on than the avalanche of set-up noise it would otherwise cause.
fn check_clock_defined(
    source: &str,
    clock_name: &str,
    clock: &Waveform,
    out: &mut Vec<Violation>,
) -> bool {
    let undefined = clock.spans_where(|v| v == Value::Unknown);
    if undefined.is_empty() {
        return true;
    }
    out.push(Violation {
        kind: ViolationKind::UndefinedClock,
        source: source.to_owned(),
        constraint: format!("CLOCK {clock_name} HAS NO DEFINED VALUE"),
        missed_by: None,
        at: undefined.first().copied(),
        observed: vec![observed_line("CK INPUT  ", clock_name, clock)],
        provenance: None,
    });
    false
}

/// Runs the `SETUP HOLD CHK` semantics (§2.4.4): the input must be
/// quiescent from `setup` before until `hold` after each rising edge of
/// the clock. Returns one violation per failed edge/phase.
#[allow(clippy::too_many_arguments)]
fn check_setup_hold_edges(
    source: &str,
    setup: Time,
    hold: Time,
    input: &Waveform,
    input_name: &str,
    clock: &Waveform,
    clock_name: &str,
    edges: &[EdgeWindow],
    out: &mut Vec<Violation>,
) {
    let period = input.period();
    let constraint = format!("SETUP TIME = {setup}, HOLD TIME = {hold}");
    let observed = vec![
        observed_line("CK INPUT  ", clock_name, clock),
        observed_line("DATA INPUT", input_name, input),
    ];
    for e in edges {
        let w = e.span;
        // Data changing during the edge window itself: the full set-up is
        // missed (the register may sample mid-transition).
        let window_quiescent = input.quiescent_throughout(w);
        if !window_quiescent && setup > Time::ZERO {
            out.push(Violation {
                kind: ViolationKind::Setup,
                source: source.to_owned(),
                constraint: constraint.clone(),
                missed_by: Some(setup),
                at: Some(w),
                observed: observed.clone(),
                provenance: None,
            });
        } else if setup > Time::ZERO {
            let avail = quiescent_before(input, w.start());
            if avail < setup {
                out.push(Violation {
                    kind: ViolationKind::Setup,
                    source: source.to_owned(),
                    constraint: constraint.clone(),
                    missed_by: Some(setup - avail),
                    at: Some(w),
                    observed: observed.clone(),
                    provenance: None,
                });
            }
        }
        if hold > Time::ZERO {
            let edge_end = w.end(period);
            let avail = quiescent_after(input, edge_end);
            if avail < hold {
                out.push(Violation {
                    kind: ViolationKind::Hold,
                    source: source.to_owned(),
                    constraint: constraint.clone(),
                    missed_by: Some(hold - avail),
                    at: Some(w),
                    observed: observed.clone(),
                    provenance: None,
                });
            }
        }
    }
}

/// Pairs each rising window with the nearest following falling window
/// (the clock's asserted pulse).
fn clock_pulses(clock: &Waveform) -> Vec<(EdgeWindow, EdgeWindow)> {
    let period = clock.period();
    let rising = edge_windows(clock, Edge::Rising);
    let falling = edge_windows(clock, Edge::Falling);
    let mut out = Vec::new();
    for r in &rising {
        let after_r = r.span.end(period);
        if let Some(f) = falling
            .iter()
            .min_by_key(|f| (f.span.start() - after_r).rem_period(period))
        {
            out.push((*r, *f));
        }
    }
    out
}

/// The timing margin of one checker: how much headroom each of its
/// constraints has. Negative slack corresponds to a reported violation.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckMargin {
    /// Checker instance name.
    pub checker: String,
    /// The checked input signal.
    pub signal: String,
    /// Worst set-up slack across all clock edges: available stability
    /// minus required set-up. `None` if the check did not apply (no
    /// set-up requirement or no edges).
    pub setup_slack: Option<Time>,
    /// Worst hold slack across all clock edges.
    pub hold_slack: Option<Time>,
    /// Worst pulse-width slack (min possible width minus required), over
    /// both polarities of a `MIN PULSE WIDTH` check.
    pub pulse_slack: Option<Time>,
}

/// Computes the timing margins of every checker primitive against the
/// settled states — the slack view designers use to see how much headroom
/// a passing design has (and by how much a failing one misses).
pub(crate) fn slack_report<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    corner: DelayCorner,
) -> Vec<CheckMargin> {
    let period = netlist.config().timing.period;
    let mut out = Vec::new();
    for (_, prim) in netlist.iter_prims() {
        match prim.kind {
            PrimKind::SetupHold { setup, hold } => {
                let input = pin_wave(netlist, prim, &prim.inputs[0], states, corner);
                let clock = pin_wave(netlist, prim, &prim.inputs[1], states, corner);
                let mut setup_slack: Option<Time> = None;
                let mut hold_slack: Option<Time> = None;
                for e in edge_windows(&clock, Edge::Rising) {
                    let avail_setup = if input.quiescent_throughout(e.span) {
                        quiescent_before(&input, e.span.start())
                    } else {
                        Time::ZERO
                    };
                    let s = avail_setup - setup;
                    setup_slack = Some(setup_slack.map_or(s, |m| m.min(s)));
                    let avail_hold = quiescent_after(&input, e.span.end(period));
                    let h = avail_hold - hold;
                    hold_slack = Some(hold_slack.map_or(h, |m| m.min(h)));
                }
                out.push(CheckMargin {
                    checker: prim.name.clone(),
                    signal: netlist.signal(prim.inputs[0].signal).name.clone(),
                    setup_slack,
                    hold_slack,
                    pulse_slack: None,
                });
            }
            PrimKind::SetupRiseHoldFall { setup, hold } => {
                let input = pin_wave(netlist, prim, &prim.inputs[0], states, corner);
                let clock = pin_wave(netlist, prim, &prim.inputs[1], states, corner);
                let mut setup_slack: Option<Time> = None;
                let mut hold_slack: Option<Time> = None;
                for (r, f) in clock_pulses(&clock) {
                    let s = quiescent_before(&input, r.span.start()) - setup;
                    setup_slack = Some(setup_slack.map_or(s, |m| m.min(s)));
                    let h = quiescent_after(&input, f.span.end(period)) - hold;
                    hold_slack = Some(hold_slack.map_or(h, |m| m.min(h)));
                }
                out.push(CheckMargin {
                    checker: prim.name.clone(),
                    signal: netlist.signal(prim.inputs[0].signal).name.clone(),
                    setup_slack,
                    hold_slack,
                    pulse_slack: None,
                });
            }
            PrimKind::MinPulseWidth { high, low } => {
                let input = pin_wave_pulse_view(netlist, prim, &prim.inputs[0], states, corner);
                let mut pulse_slack: Option<Time> = None;
                if high > Time::ZERO {
                    for p in pulses(&input, true) {
                        let s = p.min_possible_width - high;
                        pulse_slack = Some(pulse_slack.map_or(s, |m| m.min(s)));
                    }
                }
                if low > Time::ZERO {
                    for p in pulses(&input, false) {
                        let s = p.min_possible_width - low;
                        pulse_slack = Some(pulse_slack.map_or(s, |m| m.min(s)));
                    }
                }
                out.push(CheckMargin {
                    checker: prim.name.clone(),
                    signal: netlist.signal(prim.inputs[0].signal).name.clone(),
                    setup_slack: None,
                    hold_slack: None,
                    pulse_slack,
                });
            }
            _ => {}
        }
    }
    // Worst margins first.
    out.sort_by_key(|m| {
        [m.setup_slack, m.hold_slack, m.pulse_slack]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(Time::from_ps(i64::MAX))
    });
    out
}

/// The empty-verdict summary of one checker pass: which units (checker
/// primitives, hazard-flagged gates, asserted signals) fired at least one
/// violation. Everything *not* listed here produced an empty verdict, and
/// an empty verdict depends only on the unit's direct input states — so a
/// child state whose inputs to that unit are unchanged can inherit the
/// emptiness without re-running the check (§2.7 incremental case
/// analysis, applied to the checker pass).
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckCache {
    /// Checker primitives (`SetupHold`/`SetupRiseHoldFall`/`MinPulseWidth`)
    /// that reported at least one violation.
    pub violating_prims: BTreeSet<PrimId>,
    /// `(gate, asserted input index)` hazard units that reported.
    pub violating_hazards: BTreeSet<(PrimId, usize)>,
    /// Asserted generated signals whose assertion check reported.
    pub violating_asserts: BTreeSet<SignalId>,
}

/// Parent context for a memoized checker pass.
pub(crate) struct CheckMemo<'a> {
    /// The parent state's empty-verdict summary.
    pub cache: &'a CheckCache,
    /// The parent state's hazard set — a hazard unit may only be
    /// inherited if the parent actually checked it.
    pub hazards: &'a BTreeSet<(PrimId, usize)>,
    /// Signal indices whose state differs from the parent (effective
    /// view). A unit touching none of these has the same inputs as the
    /// parent's pass.
    pub dirty: &'a HashSet<usize>,
}

/// Outcome of one (possibly memoized) checker pass.
pub(crate) struct CheckPass {
    pub violations: Vec<Violation>,
    pub cache: CheckCache,
    /// Units actually evaluated against `states`.
    pub evaluated: u64,
    /// Units inherited as clean-and-empty from the parent.
    pub inherited: u64,
}

/// True if every direct input signal of `prim` is outside `dirty`.
fn inputs_clean(prim: &Primitive, dirty: &HashSet<usize>) -> bool {
    prim.input_signals().all(|s| !dirty.contains(&s.index()))
}

/// Runs one checker primitive (the three `PrimKind` checker variants)
/// against `states`, appending any violations. Reads only the prim's
/// direct input states — except through `attach_provenance`, which walks
/// the fan-in cone but only when a violation actually fired.
fn check_checker_prim<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    prim: &Primitive,
    corner: DelayCorner,
    out: &mut Vec<Violation>,
) {
    let period = netlist.config().timing.period;
    match prim.kind {
        PrimKind::SetupHold { setup, hold } => {
            let input = pin_wave(netlist, prim, &prim.inputs[0], states, corner);
            let clock = pin_wave(netlist, prim, &prim.inputs[1], states, corner);
            let in_name = &netlist.signal(prim.inputs[0].signal).name;
            let ck_name = &netlist.signal(prim.inputs[1].signal).name;
            let len_before = out.len();
            if !check_clock_defined(&prim.name, ck_name, &clock, out) {
                attach_provenance(
                    netlist,
                    states,
                    prim.inputs[1].signal,
                    &mut out[len_before..],
                );
                return;
            }
            let edges = edge_windows(&clock, Edge::Rising);
            check_setup_hold_edges(
                &prim.name, setup, hold, &input, in_name, &clock, ck_name, &edges, out,
            );
            attach_provenance(
                netlist,
                states,
                prim.inputs[0].signal,
                &mut out[len_before..],
            );
        }
        PrimKind::SetupRiseHoldFall { setup, hold } => {
            let input = pin_wave(netlist, prim, &prim.inputs[0], states, corner);
            let clock = pin_wave(netlist, prim, &prim.inputs[1], states, corner);
            let in_name = netlist.signal(prim.inputs[0].signal).name.clone();
            let ck_name = netlist.signal(prim.inputs[1].signal).name.clone();
            let len_before = out.len();
            if !check_clock_defined(&prim.name, &ck_name, &clock, out) {
                attach_provenance(
                    netlist,
                    states,
                    prim.inputs[1].signal,
                    &mut out[len_before..],
                );
                return;
            }
            let observed = vec![
                observed_line("CK INPUT  ", &ck_name, &clock),
                observed_line("DATA INPUT", &in_name, &input),
            ];
            for (r, f) in clock_pulses(&clock) {
                let constraint = format!("SETUP (RISE) = {setup}, HOLD (FALL) = {hold}");
                // Stability over the definitely-high interior of the
                // pulse (rise window end to fall window start); the
                // edge windows themselves are covered by the set-up
                // and hold checks, so each cause reports once.
                let interior = (f.span.start() - r.span.end(period)).rem_period(period);
                let high = Span::new(r.span.end(period), interior, period);
                if interior > Time::ZERO
                    && !high.is_full(period)
                    && !input.quiescent_throughout(high)
                {
                    out.push(Violation {
                        kind: ViolationKind::StableWhileTrue,
                        source: prim.name.clone(),
                        constraint: constraint.clone(),
                        missed_by: None,
                        at: Some(high),
                        observed: observed.clone(),
                        provenance: None,
                    });
                }
                if setup > Time::ZERO {
                    let avail = quiescent_before(&input, r.span.start());
                    if avail < setup {
                        out.push(Violation {
                            kind: ViolationKind::Setup,
                            source: prim.name.clone(),
                            constraint: constraint.clone(),
                            missed_by: Some(setup - avail),
                            at: Some(r.span),
                            observed: observed.clone(),
                            provenance: None,
                        });
                    }
                }
                if hold > Time::ZERO {
                    let avail = quiescent_after(&input, f.span.end(period));
                    if avail < hold {
                        out.push(Violation {
                            kind: ViolationKind::Hold,
                            source: prim.name.clone(),
                            constraint,
                            missed_by: Some(hold - avail),
                            at: Some(f.span),
                            observed: observed.clone(),
                            provenance: None,
                        });
                    }
                }
            }
            attach_provenance(
                netlist,
                states,
                prim.inputs[0].signal,
                &mut out[len_before..],
            );
        }
        PrimKind::MinPulseWidth { high, low } => {
            // Pulse widths are measured with skew kept separate: skew
            // shifts both edges of a pulse together (§2.8).
            let input = pin_wave_pulse_view(netlist, prim, &prim.inputs[0], states, corner);
            let name = &netlist.signal(prim.inputs[0].signal).name;
            let len_before = out.len();
            let observed = vec![observed_line("INPUT     ", name, &input)];
            if high > Time::ZERO {
                for p in pulses(&input, true) {
                    if p.min_possible_width < high {
                        let glitch = if p.certain {
                            ""
                        } else {
                            " (POTENTIAL SPURIOUS PULSE)"
                        };
                        out.push(Violation {
                            kind: ViolationKind::MinPulseHigh,
                            source: prim.name.clone(),
                            constraint: format!(
                                "MIN HIGH WIDTH = {high}, POSSIBLE WIDTH = {}{glitch}",
                                p.min_possible_width
                            ),
                            missed_by: Some(high - p.min_possible_width),
                            at: Some(p.possible),
                            observed: observed.clone(),
                            provenance: None,
                        });
                    }
                }
            }
            if low > Time::ZERO {
                for p in pulses(&input, false) {
                    if p.min_possible_width < low {
                        let glitch = if p.certain {
                            ""
                        } else {
                            " (POTENTIAL SPURIOUS PULSE)"
                        };
                        out.push(Violation {
                            kind: ViolationKind::MinPulseLow,
                            source: prim.name.clone(),
                            constraint: format!(
                                "MIN LOW WIDTH = {low}, POSSIBLE WIDTH = {}{glitch}",
                                p.min_possible_width
                            ),
                            missed_by: Some(low - p.min_possible_width),
                            at: Some(p.possible),
                            observed: observed.clone(),
                            provenance: None,
                        });
                    }
                }
            }
            attach_provenance(
                netlist,
                states,
                prim.inputs[0].signal,
                &mut out[len_before..],
            );
        }
        _ => {}
    }
}

/// Runs one `&A`/`&H` directive check (§2.6) for `(pid, clock_idx)`: the
/// other inputs of the gate must be quiescent whenever the asserted
/// (clock) input could be true.
fn check_hazard_gate<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    pid: PrimId,
    clock_idx: usize,
    corner: DelayCorner,
    out: &mut Vec<Violation>,
) {
    let prim = netlist.prim(pid);
    let clock = pin_wave(netlist, prim, &prim.inputs[clock_idx], states, corner);
    let asserted = clock.spans_where(Value::could_be_high);
    let ck_name = netlist.signal(prim.inputs[clock_idx].signal).name.clone();
    for (i, conn) in prim.inputs.iter().enumerate() {
        if i == clock_idx {
            continue;
        }
        let other = pin_wave(netlist, prim, conn, states, corner);
        let name = &netlist.signal(conn.signal).name;
        for span in &asserted {
            if !other.quiescent_throughout(*span) {
                out.push(Violation {
                    kind: ViolationKind::Hazard,
                    source: prim.name.clone(),
                    constraint: format!("CONTROL MUST BE STABLE WHILE {ck_name} ASSERTED"),
                    missed_by: None,
                    at: Some(*span),
                    observed: vec![
                        observed_line("CLOCK     ", &ck_name, &clock),
                        observed_line("CONTROL   ", name, &other),
                    ],
                    provenance: Some(provenance_for(netlist, states, conn.signal)),
                });
                break; // one report per (gate, control input)
            }
        }
    }
}

/// True if `sig` carries the §2.5.2 assertion-check unit: a non-clock
/// assertion on a generated (driven) signal.
fn has_assertion_unit(netlist: &Netlist, sid: SignalId, sig: &Signal) -> bool {
    sig.assertion
        .as_ref()
        .is_some_and(|a| !a.kind.is_clock() && netlist.driver(sid).is_some())
}

/// Checks one stable assertion on a generated signal (§2.5.2): the
/// designer's assertion against the actual settled timing. Reads only
/// `sid`'s own state (plus provenance, computed only on failure).
fn check_signal_assertion<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    sid: SignalId,
    sig: &Signal,
    out: &mut Vec<Violation>,
) {
    let timing = netlist.config().timing;
    let assertion = sig.assertion.as_ref().expect("assertion unit");
    let (asserted_wave, _) = assertion.to_state(&timing);
    let actual = states.state_at(sid.index()).resolved();
    for span in asserted_wave.spans_where(|v| v == Value::Stable) {
        if !actual.quiescent_throughout(span) {
            out.push(Violation {
                kind: ViolationKind::AssertionViolated,
                source: sig.full_name(),
                constraint: format!("ASSERTED STABLE {span}"),
                missed_by: None,
                at: Some(span),
                observed: vec![observed_line("ACTUAL    ", &sig.name, &actual)],
                provenance: Some(provenance_for(netlist, states, sid)),
            });
        }
    }
}

/// Verifies all checker primitives, `&A`/`&H` gate directives and stable
/// assertions against the settled signal states, optionally inheriting
/// empty verdicts from a parent pass. `hazards` lists `(gate, asserted
/// input index)` pairs collected during evaluation.
///
/// With `parent: Some(memo)`, a unit is *skipped* — its (empty) verdict
/// inherited — exactly when the parent evaluated the same unit, found
/// nothing, and none of the unit's direct input signals are dirty. Units
/// that fired at the parent are always re-evaluated so the violations
/// (and their cone-walking provenance) come out byte-identical to a full
/// pass; units with a dirty input are re-evaluated because their verdict
/// may have changed. Violations are appended in netlist order, the same
/// order as a full pass, so the memoized result *is* the full result.
pub(crate) fn run_checks_cached<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    hazards: &[(PrimId, usize)],
    corner: DelayCorner,
    parent: Option<&CheckMemo<'_>>,
) -> CheckPass {
    let mut out = Vec::new();
    let mut cache = CheckCache::default();
    let mut evaluated = 0u64;
    let mut inherited = 0u64;

    for (pid, prim) in netlist.iter_prims() {
        if !matches!(
            prim.kind,
            PrimKind::SetupHold { .. }
                | PrimKind::SetupRiseHoldFall { .. }
                | PrimKind::MinPulseWidth { .. }
        ) {
            continue;
        }
        let clean = parent.is_some_and(|m| {
            !m.cache.violating_prims.contains(&pid) && inputs_clean(prim, m.dirty)
        });
        if clean {
            inherited += 1;
            continue;
        }
        evaluated += 1;
        let before = out.len();
        check_checker_prim(netlist, states, prim, corner, &mut out);
        if out.len() > before {
            cache.violating_prims.insert(pid);
        }
    }

    for &(pid, clock_idx) in hazards {
        // A hazard unit may only be inherited if the parent's hazard set
        // contained the same (gate, input) pair — a unit new to this
        // state was never checked before.
        let clean = parent.is_some_and(|m| {
            m.hazards.contains(&(pid, clock_idx))
                && !m.cache.violating_hazards.contains(&(pid, clock_idx))
                && inputs_clean(netlist.prim(pid), m.dirty)
        });
        if clean {
            inherited += 1;
            continue;
        }
        evaluated += 1;
        let before = out.len();
        check_hazard_gate(netlist, states, pid, clock_idx, corner, &mut out);
        if out.len() > before {
            cache.violating_hazards.insert((pid, clock_idx));
        }
    }

    for (sid, sig) in netlist.iter_signals() {
        if !has_assertion_unit(netlist, sid, sig) {
            continue;
        }
        let clean = parent.is_some_and(|m| {
            !m.cache.violating_asserts.contains(&sid) && !m.dirty.contains(&sid.index())
        });
        if clean {
            inherited += 1;
            continue;
        }
        evaluated += 1;
        let before = out.len();
        check_signal_assertion(netlist, states, sid, sig, &mut out);
        if out.len() > before {
            cache.violating_asserts.insert(sid);
        }
    }

    CheckPass {
        violations: out,
        cache,
        evaluated,
        inherited,
    }
}

/// Verifies all checker primitives, `&A`/`&H` gate directives and stable
/// assertions against the settled signal states — the full, unmemoized
/// checker pass. `hazards` lists `(gate, asserted input index)` pairs
/// collected during evaluation.
pub(crate) fn run_all_checks<S: StateView + ?Sized>(
    netlist: &Netlist,
    states: &S,
    hazards: &[(PrimId, usize)],
    corner: DelayCorner,
) -> Vec<Violation> {
    run_checks_cached(netlist, states, hazards, corner, None).violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value::*;

    const P: Time = Time::from_ps(50_000);

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn quiescent_before_measures_stable_run() {
        let w = Waveform::from_intervals(P, Stable, [(ns(5.0), ns(10.0), Change)]);
        assert_eq!(quiescent_before(&w, ns(20.0)), ns(10.0));
        assert_eq!(quiescent_before(&w, ns(10.0)), Time::ZERO);
        assert_eq!(quiescent_before(&w, ns(7.0)), Time::ZERO);
        // Wrapping: stable 10..50 and 0..5 => at t=3 the run is 43 ns.
        assert_eq!(quiescent_before(&w, ns(3.0)), ns(43.0));
    }

    #[test]
    fn quiescent_before_full_period() {
        let w = Waveform::constant(P, Stable);
        assert_eq!(quiescent_before(&w, ns(20.0)), P);
    }

    #[test]
    fn quiescent_after_measures_stable_run() {
        let w = Waveform::from_intervals(P, Stable, [(ns(5.0), ns(10.0), Change)]);
        assert_eq!(quiescent_after(&w, ns(10.0)), ns(45.0)); // 10..50 + 0..5
        assert_eq!(quiescent_after(&w, ns(48.0)), ns(7.0));
        assert_eq!(quiescent_after(&w, ns(6.0)), Time::ZERO);
    }

    #[test]
    fn setup_hold_edges_report_margins() {
        // Paper example shape: data stable at 11.5, clock edge window
        // starting at 11.5 => setup of 3.5 missed by the full 3.5 ns.
        let data = Waveform::from_intervals(P, Stable, [(ns(0.5), ns(11.5), Change)]);
        let clock = Waveform::from_intervals(P, Zero, [(ns(11.5), ns(13.5), Rise)])
            .overwrite(Span::new(ns(13.5), ns(16.5), P), One);
        let edges = edge_windows(&clock, Edge::Rising);
        let mut v = Vec::new();
        check_setup_hold_edges(
            "CHK",
            ns(3.5),
            ns(1.0),
            &data,
            "ADR",
            &clock,
            "WE",
            &edges,
            &mut v,
        );
        assert_eq!(v.len(), 1, "violations: {v:#?}");
        assert_eq!(v[0].kind, ViolationKind::Setup);
        assert_eq!(v[0].missed_by, Some(ns(3.5)));
    }

    #[test]
    fn setup_satisfied_with_enough_margin() {
        let data = Waveform::from_intervals(P, Stable, [(ns(0.5), ns(5.5), Change)]);
        let clock = Waveform::from_intervals(P, Zero, [(ns(20.0), ns(25.0), One)]);
        let edges = edge_windows(&clock, Edge::Rising);
        let mut v = Vec::new();
        check_setup_hold_edges(
            "CHK",
            ns(3.5),
            ns(1.0),
            &data,
            "D",
            &clock,
            "CK",
            &edges,
            &mut v,
        );
        assert!(v.is_empty(), "unexpected: {v:#?}");
    }

    #[test]
    fn hold_violation_detected() {
        // Data starts changing 0.5 ns after the clock edge; hold is 1.5.
        let clock = Waveform::from_intervals(P, Zero, [(ns(20.0), ns(25.0), One)]);
        let data = Waveform::from_intervals(P, Stable, [(ns(20.5), ns(30.0), Change)]);
        let edges = edge_windows(&clock, Edge::Rising);
        let mut v = Vec::new();
        check_setup_hold_edges(
            "CHK",
            ns(2.0),
            ns(1.5),
            &data,
            "D",
            &clock,
            "CK",
            &edges,
            &mut v,
        );
        let holds: Vec<_> = v.iter().filter(|x| x.kind == ViolationKind::Hold).collect();
        assert_eq!(holds.len(), 1);
        assert_eq!(holds[0].missed_by, Some(ns(1.0)));
    }

    #[test]
    fn negative_hold_never_violates_after_edge() {
        // The thesis' register file specifies a hold of -1.0 ns.
        let clock = Waveform::from_intervals(P, Zero, [(ns(20.0), ns(25.0), One)]);
        let data = Waveform::from_intervals(P, Stable, [(ns(21.0), ns(30.0), Change)]);
        let edges = edge_windows(&clock, Edge::Rising);
        let mut v = Vec::new();
        check_setup_hold_edges(
            "CHK",
            ns(2.0),
            ns(-1.0),
            &data,
            "D",
            &clock,
            "CK",
            &edges,
            &mut v,
        );
        assert!(v.is_empty(), "negative hold must not fire: {v:#?}");
    }

    #[test]
    fn clock_pulse_pairing() {
        let clock = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)]);
        let pairs = clock_pulses(&clock);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.span.start(), ns(10.0));
        assert_eq!(pairs[0].1.span.start(), ns(20.0));
    }
}
