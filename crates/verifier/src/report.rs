//! Timing-violation records and the listings the Timing Verifier prints:
//! the error report of Fig 3-11 and the signal-value summary of Fig 3-10.

use scald_wave::{Span, Time};
use std::fmt;

/// The class of a detected timing error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Set-up time violated: the checked input was still changing within
    /// the set-up interval before a clock edge (§2.4.4).
    Setup,
    /// Hold time violated: the checked input changed within the hold
    /// interval after a clock edge.
    Hold,
    /// The checked input changed while the clock was true
    /// (`SETUP RISE HOLD FALL CHK`, §2.4.4).
    StableWhileTrue,
    /// A high pulse could be narrower than the specified minimum (§2.4.5).
    MinPulseHigh,
    /// A low pulse could be narrower than the specified minimum.
    MinPulseLow,
    /// A control input gated with a clock was not stable while the clock
    /// was asserted — the `&A`/`&H` hazard check (§2.6, Fig 1-5).
    Hazard,
    /// A generated signal's actual timing violates the stable assertion in
    /// its name (§2.5.2).
    AssertionViolated,
    /// A checker's clock input is undefined (`U`) for part of the cycle —
    /// usually a missing clock assertion or an unconnected clock tree.
    UndefinedClock,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Setup => "SETUP TIME VIOLATED",
            ViolationKind::Hold => "HOLD TIME VIOLATED",
            ViolationKind::StableWhileTrue => "INPUT CHANGING WHILE CLOCK TRUE",
            ViolationKind::MinPulseHigh => "MINIMUM HIGH PULSE WIDTH VIOLATED",
            ViolationKind::MinPulseLow => "MINIMUM LOW PULSE WIDTH VIOLATED",
            ViolationKind::Hazard => "CONTROL SIGNAL CHANGING WHILE CLOCK ASSERTED",
            ViolationKind::AssertionViolated => "STABLE ASSERTION VIOLATED",
            ViolationKind::UndefinedClock => "CLOCK INPUT UNDEFINED",
        };
        f.write_str(s)
    }
}

/// One detected timing error, with the context the thesis' reports carry
/// (Fig 3-11): the checker involved, the constraint, the margin by which
/// it was missed, and the value listings of the signals the checker saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What constraint failed.
    pub kind: ViolationKind,
    /// Instance name of the checker/gate/signal reporting the error.
    pub source: String,
    /// The constraint as specified, e.g. `SETUP TIME = 3.5, HOLD = 1.0`.
    pub constraint: String,
    /// How much the constraint was missed by, when meaningful.
    pub missed_by: Option<Time>,
    /// The interval within the cycle in which the failure occurs.
    pub at: Option<Span>,
    /// `NAME: value listing` lines for the signals the check examined.
    pub observed: Vec<String>,
}

impl Violation {
    /// `true` if this violation's margin is at least `margin`.
    #[must_use]
    pub fn missed_by_at_least(&self, margin: Time) -> bool {
        self.missed_by.is_some_and(|m| m >= margin)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "** {}", self.kind)?;
        if !self.constraint.is_empty() {
            write!(f, ", {}", self.constraint)?;
        }
        if let Some(m) = self.missed_by {
            write!(f, ", VIOLATED BY {m} NSEC")?;
        }
        if let Some(at) = self.at {
            write!(f, " (AT {at})")?;
        }
        writeln!(f, "  [{}]", self.source)?;
        for line in &self.observed {
            writeln!(f, "     {line}")?;
        }
        Ok(())
    }
}

/// Outcome of verifying one case (§2.7): the violations found plus the
/// execution statistics the thesis reports in Table 3-1.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label (`"case 1"`, or the assignments for named cases).
    pub name: String,
    /// All violations, in netlist order.
    pub violations: Vec<Violation>,
    /// Events processed for this case: the number of times an output was
    /// given a new value (20 052 for the thesis' full-design run).
    pub events: u64,
    /// Primitive evaluations performed for this case.
    pub evaluations: u64,
    /// Value records (Fig 2-7 run-length nodes) across all signals in
    /// this case's settled state — the per-case slice of the Table 3-3
    /// `SIGNAL VALUES` storage accounting.
    pub value_records: usize,
}

impl CaseResult {
    /// Violations of one kind.
    #[must_use]
    pub fn of_kind(&self, kind: ViolationKind) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.kind == kind).collect()
    }

    /// `true` if no timing errors were found for this case.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== {}: {} violation(s), {} events, {} evaluations",
            self.name,
            self.violations.len(),
            self.events,
            self.evaluations
        )?;
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_resembles_fig_3_11() {
        let v = Violation {
            kind: ViolationKind::Setup,
            source: "ADR CHK".to_owned(),
            constraint: "SETUP TIME = 3.5, HOLD TIME = 1.0".to_owned(),
            missed_by: Some(Time::from_ns(3.5)),
            at: None,
            observed: vec![
                "CK INPUT  = WE: 0 0.0 R 11.5 1 13.5".to_owned(),
                "DATA INPUT = ADR: S 0.0 C 0.5 S 11.5".to_owned(),
            ],
        };
        let text = v.to_string();
        assert!(text.contains("SETUP TIME VIOLATED"));
        assert!(text.contains("VIOLATED BY 3.5 NSEC"));
        assert!(text.contains("DATA INPUT = ADR"));
        assert!(v.missed_by_at_least(Time::from_ns(3.0)));
        assert!(!v.missed_by_at_least(Time::from_ns(4.0)));
    }

    #[test]
    fn case_result_filters() {
        let mk = |kind| Violation {
            kind,
            source: String::new(),
            constraint: String::new(),
            missed_by: None,
            at: None,
            observed: Vec::new(),
        };
        let r = CaseResult {
            name: "case 1".to_owned(),
            violations: vec![mk(ViolationKind::Setup), mk(ViolationKind::Hazard)],
            events: 10,
            evaluations: 12,
            value_records: 0,
        };
        assert!(!r.is_clean());
        assert_eq!(r.of_kind(ViolationKind::Setup).len(), 1);
        assert_eq!(r.of_kind(ViolationKind::Hold).len(), 0);
        assert!(r.to_string().contains("case 1"));
    }
}
