//! The report layer: timing-violation records with fan-in provenance,
//! and the [`Report`] document that owns every listing the Timing
//! Verifier prints — the error report of Fig 3-11, the signal-value
//! summary of Fig 3-10, the cross-reference, slack and storage views —
//! renderable as text sections or as one versioned JSON document.
//!
//! # JSON schema (version 2)
//!
//! [`Report::to_json`] emits a single top-level object:
//!
//! ```text
//! {
//!   "schema": "scald-tv-report",        // REPORT_SCHEMA, always present
//!   "version": 2,                       // REPORT_VERSION, bumped on breaking change
//!   "design": "designs/foo.scald",      // caller-supplied design label
//!   "clean": false,
//!   "total_violations": 3,
//!   "engine": {
//!     "signals": 61, "prims": 50,       // design size
//!     "cases": 1, "jobs": 4,            // case-analysis shape
//!     "case_strategy": "auto",          // resolved scheduling path
//!     "events": 123, "evaluations": 456,// cumulative effort (§3.3.2)
//!     "wall_ns": 183042,                // null when not measured
//!     "period_ns": 50
//!   },
//!   "cases": [ {
//!     "name": "case 1: no case overrides",
//!     "events": 123, "evaluations": 456, "value_records": 78,
//!     "violations": [ {
//!       "kind": "setup",                // stable lower-snake token
//!       "label": "SETUP TIME VIOLATED", // the Fig 3-11 heading
//!       "source": "TOP/REG#14/setup_hold#16",
//!       "constraint": "SETUP TIME = 2.5, HOLD TIME = 1.5",
//!       "missed_by_ns": 2.5,            // null when not meaningful
//!       "at": {"start_ns": 49, "width_ns": 2},   // null when not localized
//!       "observed": ["CK INPUT   = ...", ...],
//!       "provenance": {                 // fan-in cone of the checked input
//!         "truncated": false,
//!         "hops": [ {
//!           "signal": "READ BUS",
//!           "depth": 0,                 // 0 = the checked input itself
//!           "via": "TOP/RAM#6",         // driving primitive; null at a source
//!           "arrival": [{"start_ns": 0, "width_ns": 1.4}, ...]
//!         }, ... ]
//!       }
//!     } ]
//!   } ],
//!   "slack": [ {"checker": ..., "signal": ...,
//!               "setup_slack_ns": 1.5|null, "hold_slack_ns": ..., "pulse_slack_ns": ...} ],
//!   "storage": { "rows": [{"area": "SIGNAL VALUES", "bytes": N}, ...],
//!                "total_bytes": N, "value_records_per_signal": 2.97 },
//!   "assumed_stable": ["NAME", ...],    // the §2.5 cross-reference
//!   "summary": [ {"signal": "ADR", "wave": "S 0.0 C 0.5 S 13.5"}, ... ],
//!   "probabilistic": {                  // v2: present only when the run
//!     "rho": 0.5,                       // was given delay distributions
//!     "endpoints": [ {                  // (scald-tv --prob RHO)
//!       "endpoint": "DATA BUS",
//!       "constraint_source": "TOP/REG CHK#12",
//!       "arrival_mean_ns": 41.2, "arrival_sigma_ns": 1.7,
//!       "slack_mean_ns": 6.3,   "slack_sigma_ns": 1.7,
//!       "deadline_ns": 47.5, "worst_case_ns": 46.1,
//!       "violation_probability": 0.0001
//!     } ]
//!   }
//! }
//! ```
//!
//! `arrival` windows are the spans (start + width within the cycle,
//! nanoseconds) where the signal *may be changing*; spans can wrap the
//! period. Consumers must ignore unknown fields; within a major version
//! fields are only added, never removed or retyped. Version 2 is a
//! purely additive revision of version 1: the only change is the
//! optional `probabilistic` section, which is **omitted** (not null)
//! when no distribution analysis ran, so version-1 consumers keep
//! working unchanged.
//!
//! The probabilistic section reports each checked endpoint's arrival
//! time and slack as normal distributions (mean + sigma, nanoseconds)
//! instead of single worst-case numbers, plus the probability the
//! endpoint misses its deadline — §4.2.4's "verified to a specified
//! level of probability". The verifier itself never fills it in (the
//! seven-value algebra is worst-case by construction); callers with
//! distribution data — `scald-tv --prob RHO`, via `scald-stats` — attach
//! it before rendering.

use scald_trace::json::Json;
use scald_wave::{Span, Time, Waveform};
use std::fmt;
use std::time::Duration;

use crate::cache::EvalCacheStats;
use crate::checkers::CheckMargin;
use crate::engine::CaseStrategy;
use crate::storage::StorageReport;

/// The JSON document identifier emitted in the `"schema"` field.
pub const REPORT_SCHEMA: &str = "scald-tv-report";
/// Current major version of the JSON report schema. Version 2 adds the
/// optional `probabilistic` section (omitted when absent); everything
/// else is identical to version 1.
pub const REPORT_VERSION: u64 = 2;

/// The class of a detected timing error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Set-up time violated: the checked input was still changing within
    /// the set-up interval before a clock edge (§2.4.4).
    Setup,
    /// Hold time violated: the checked input changed within the hold
    /// interval after a clock edge.
    Hold,
    /// The checked input changed while the clock was true
    /// (`SETUP RISE HOLD FALL CHK`, §2.4.4).
    StableWhileTrue,
    /// A high pulse could be narrower than the specified minimum (§2.4.5).
    MinPulseHigh,
    /// A low pulse could be narrower than the specified minimum.
    MinPulseLow,
    /// A control input gated with a clock was not stable while the clock
    /// was asserted — the `&A`/`&H` hazard check (§2.6, Fig 1-5).
    Hazard,
    /// A generated signal's actual timing violates the stable assertion in
    /// its name (§2.5.2).
    AssertionViolated,
    /// A checker's clock input is undefined (`U`) for part of the cycle —
    /// usually a missing clock assertion or an unconnected clock tree.
    UndefinedClock,
}

impl ViolationKind {
    /// Stable lower-snake token for machine-readable output (the JSON
    /// `"kind"` field). Display gives the Fig 3-11 heading instead.
    #[must_use]
    pub const fn token(self) -> &'static str {
        match self {
            ViolationKind::Setup => "setup",
            ViolationKind::Hold => "hold",
            ViolationKind::StableWhileTrue => "stable_while_true",
            ViolationKind::MinPulseHigh => "min_pulse_high",
            ViolationKind::MinPulseLow => "min_pulse_low",
            ViolationKind::Hazard => "hazard",
            ViolationKind::AssertionViolated => "assertion_violated",
            ViolationKind::UndefinedClock => "undefined_clock",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Setup => "SETUP TIME VIOLATED",
            ViolationKind::Hold => "HOLD TIME VIOLATED",
            ViolationKind::StableWhileTrue => "INPUT CHANGING WHILE CLOCK TRUE",
            ViolationKind::MinPulseHigh => "MINIMUM HIGH PULSE WIDTH VIOLATED",
            ViolationKind::MinPulseLow => "MINIMUM LOW PULSE WIDTH VIOLATED",
            ViolationKind::Hazard => "CONTROL SIGNAL CHANGING WHILE CLOCK ASSERTED",
            ViolationKind::AssertionViolated => "STABLE ASSERTION VIOLATED",
            ViolationKind::UndefinedClock => "CLOCK INPUT UNDEFINED",
        };
        f.write_str(s)
    }
}

/// One hop of a violation's fan-in provenance: a signal in the cone
/// walked back from the failing checker input, with the arrival windows
/// it contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceHop {
    /// Full display name of the signal (assertion suffix included).
    pub signal: String,
    /// Distance from the checked input (0 = the checked input itself).
    pub depth: usize,
    /// The primitive driving this signal, or `None` at a source (an
    /// asserted or assumed-stable signal, or a primary input).
    pub via: Option<String>,
    /// Windows within the cycle where the signal may be changing — the
    /// arrival time this hop feeds forward. Empty if quiescent all cycle.
    pub arrival: Vec<Span>,
}

/// The fan-in cone of a failing checker input, breadth-first from the
/// checked signal back through its drivers (§2.9's explanation listings,
/// made structural). Walks stop at asserted signals — their timing is a
/// designer-stated fact, the root cause boundary of §2.5.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// Hops in breadth-first order; the first is the checked input.
    pub hops: Vec<ProvenanceHop>,
    /// `true` if the walk hit its depth or size cap before exhausting
    /// the cone.
    pub truncated: bool,
}

/// One detected timing error, with the context the thesis' reports carry
/// (Fig 3-11): the checker involved, the constraint, the margin by which
/// it was missed, and the value listings of the signals the checker saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What constraint failed.
    pub kind: ViolationKind,
    /// Instance name of the checker/gate/signal reporting the error.
    pub source: String,
    /// The constraint as specified, e.g. `SETUP TIME = 3.5, HOLD = 1.0`.
    pub constraint: String,
    /// How much the constraint was missed by, when meaningful.
    pub missed_by: Option<Time>,
    /// The interval within the cycle in which the failure occurs.
    pub at: Option<Span>,
    /// `NAME: value listing` lines for the signals the check examined.
    pub observed: Vec<String>,
    /// The fan-in cone of the failing input, walked back with the
    /// arrival window contributed at each hop.
    pub provenance: Option<Provenance>,
}

impl Violation {
    /// `true` if this violation's margin is at least `margin`.
    #[must_use]
    pub fn missed_by_at_least(&self, margin: Time) -> bool {
        self.missed_by.is_some_and(|m| m >= margin)
    }

    fn json_value(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str(self.kind.token())),
            ("label".into(), Json::str(self.kind.to_string())),
            ("source".into(), Json::str(&self.source)),
            ("constraint".into(), Json::str(&self.constraint)),
            (
                "missed_by_ns".into(),
                self.missed_by.map_or(Json::Null, |t| Json::from(t.as_ns())),
            ),
            ("at".into(), self.at.map_or(Json::Null, span_json)),
            (
                "observed".into(),
                Json::Arr(self.observed.iter().map(Json::str).collect()),
            ),
            (
                "provenance".into(),
                self.provenance
                    .as_ref()
                    .map_or(Json::Null, Provenance::json_value),
            ),
        ])
    }
}

fn span_json(s: Span) -> Json {
    Json::Obj(vec![
        ("start_ns".into(), Json::from(s.start().as_ns())),
        ("width_ns".into(), Json::from(s.width().as_ns())),
    ])
}

impl Provenance {
    fn json_value(&self) -> Json {
        Json::Obj(vec![
            ("truncated".into(), Json::from(self.truncated)),
            (
                "hops".into(),
                Json::Arr(
                    self.hops
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("signal".into(), Json::str(&h.signal)),
                                ("depth".into(), Json::from(h.depth as u64)),
                                ("via".into(), h.via.as_deref().map_or(Json::Null, Json::str)),
                                (
                                    "arrival".into(),
                                    Json::Arr(h.arrival.iter().map(|s| span_json(*s)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "** {}", self.kind)?;
        if !self.constraint.is_empty() {
            write!(f, ", {}", self.constraint)?;
        }
        if let Some(m) = self.missed_by {
            write!(f, ", VIOLATED BY {m} NSEC")?;
        }
        if let Some(at) = self.at {
            write!(f, " (AT {at})")?;
        }
        writeln!(f, "  [{}]", self.source)?;
        for line in &self.observed {
            writeln!(f, "     {line}")?;
        }
        if let Some(p) = &self.provenance {
            if !p.hops.is_empty() {
                writeln!(f, "     FAN-IN PROVENANCE:")?;
                for hop in &p.hops {
                    let via = hop
                        .via
                        .as_deref()
                        .map_or_else(|| "(source)".to_owned(), |v| format!("<- {v}"));
                    let windows = if hop.arrival.is_empty() {
                        "quiescent".to_owned()
                    } else {
                        let spans: Vec<String> =
                            hop.arrival.iter().map(ToString::to_string).collect();
                        format!("changing {}", spans.join(", "))
                    };
                    writeln!(
                        f,
                        "       {:pad$}{} {via}, {windows}",
                        "",
                        hop.signal,
                        pad = 2 * hop.depth
                    )?;
                }
                if p.truncated {
                    writeln!(f, "       ... (cone truncated)")?;
                }
            }
        }
        Ok(())
    }
}

/// Outcome of verifying one case (§2.7): the violations found plus the
/// execution statistics the thesis reports in Table 3-1.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label (`"case 1"`, or the assignments for named cases).
    pub name: String,
    /// All violations, in netlist order.
    pub violations: Vec<Violation>,
    /// Events processed for this case: the number of times an output was
    /// given a new value (20 052 for the thesis' full-design run).
    pub events: u64,
    /// Primitive evaluations performed for this case.
    pub evaluations: u64,
    /// Value records (Fig 2-7 run-length nodes) across all signals in
    /// this case's settled state — the per-case slice of the Table 3-3
    /// `SIGNAL VALUES` storage accounting.
    pub value_records: usize,
}

impl CaseResult {
    /// Violations of one kind.
    #[must_use]
    pub fn of_kind(&self, kind: ViolationKind) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.kind == kind).collect()
    }

    /// `true` if no timing errors were found for this case.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn json_value(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("events".into(), Json::from(self.events)),
            ("evaluations".into(), Json::from(self.evaluations)),
            (
                "value_records".into(),
                Json::from(self.value_records as u64),
            ),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(Violation::json_value).collect()),
            ),
        ])
    }
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== {}: {} violation(s), {} events, {} evaluations",
            self.name,
            self.violations.len(),
            self.events,
            self.evaluations
        )?;
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// One endpoint of a probabilistic timing analysis: arrival and slack
/// as normal distributions plus the probability of missing the
/// deadline. Plain data — the verifier does not compute these (its
/// algebra is worst-case); `scald-tv --prob` fills them from
/// `scald-stats` before rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbEndpoint {
    /// The checked signal.
    pub endpoint: String,
    /// The checker/storage primitive imposing the deadline.
    pub constraint_source: String,
    /// Mean arrival time at the endpoint, ns.
    pub arrival_mean_ns: f64,
    /// Arrival-time standard deviation, ns.
    pub arrival_sigma_ns: f64,
    /// Mean slack (`deadline - arrival`), ns; negative means a probable
    /// violation.
    pub slack_mean_ns: f64,
    /// Slack standard deviation, ns (equal to the arrival sigma).
    pub slack_sigma_ns: f64,
    /// The latest acceptable arrival, ns.
    pub deadline_ns: f64,
    /// The worst-case (min/max algebra) arrival, for comparison with
    /// the distribution view.
    pub worst_case_ns: f64,
    /// Probability the endpoint misses its deadline.
    pub violation_probability: f64,
}

/// The optional probabilistic section of a [`Report`] (schema v2):
/// per-endpoint arrival/slack distributions at a given inter-path
/// correlation. Omitted from the JSON document entirely when absent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbSection {
    /// Inter-path correlation used at reconvergent fan-in (0 =
    /// independent components, 1 = perfectly correlated).
    pub rho: f64,
    /// Per-endpoint results, in netlist order.
    pub endpoints: Vec<ProbEndpoint>,
}

impl ProbSection {
    /// Endpoints whose violation probability exceeds `threshold`.
    #[must_use]
    pub fn risky(&self, threshold: f64) -> Vec<&ProbEndpoint> {
        self.endpoints
            .iter()
            .filter(|e| e.violation_probability > threshold)
            .collect()
    }

    fn json_value(&self) -> Json {
        Json::Obj(vec![
            ("rho".into(), Json::from(self.rho)),
            (
                "endpoints".into(),
                Json::Arr(
                    self.endpoints
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("endpoint".into(), Json::str(&e.endpoint)),
                                ("constraint_source".into(), Json::str(&e.constraint_source)),
                                ("arrival_mean_ns".into(), Json::from(e.arrival_mean_ns)),
                                ("arrival_sigma_ns".into(), Json::from(e.arrival_sigma_ns)),
                                ("slack_mean_ns".into(), Json::from(e.slack_mean_ns)),
                                ("slack_sigma_ns".into(), Json::from(e.slack_sigma_ns)),
                                ("deadline_ns".into(), Json::from(e.deadline_ns)),
                                ("worst_case_ns".into(), Json::from(e.worst_case_ns)),
                                (
                                    "violation_probability".into(),
                                    Json::from(e.violation_probability),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for ProbEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<40} arrival N({:.3}, {:.3}²) slack N({:.3}, {:.3}²) \
             P(viol) = {:.2e}",
            self.endpoint,
            self.arrival_mean_ns,
            self.arrival_sigma_ns,
            self.slack_mean_ns,
            self.slack_sigma_ns,
            self.violation_probability
        )
    }
}

/// Execution statistics of one verification run — the Table 3-1 numbers
/// plus the run shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Signals in the design.
    pub signals: usize,
    /// Primitives in the design.
    pub prims: usize,
    /// Cases analysed.
    pub cases: usize,
    /// Worker-pool size used for case analysis.
    pub jobs: usize,
    /// Case-analysis strategy the run resolved to, echoed so benches
    /// and CI can confirm which scheduling path executed.
    pub case_strategy: CaseStrategy,
    /// Cumulative signal-change events (§3.3.2).
    pub events: u64,
    /// Cumulative primitive evaluations.
    pub evaluations: u64,
    /// Wall-clock time of the run, when the caller measured it.
    pub verify_wall: Option<Duration>,
    /// Evaluation-memo-table counters, when caching was enabled.
    pub eval_cache: Option<EvalCacheStats>,
}

/// Everything one verification run produced, in one place: per-case
/// results (violations with provenance), engine statistics, the slack
/// and storage views, the assumed-stable cross-reference, and the
/// settled waveform of every signal.
///
/// This is the API the listings hang off — `scald-tv` renders a
/// `Report` either as the classic text sections or as the versioned
/// JSON document described in the module docs in `report.rs`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Caller-supplied design label (usually the source path).
    pub design: String,
    /// Per-case outcomes, in input-case order.
    pub cases: Vec<CaseResult>,
    /// Run statistics.
    pub engine: EngineStats,
    /// Per-checker timing margins, worst first.
    pub slack: Vec<CheckMargin>,
    /// Table 3-3 storage accounting of the settled state.
    pub storage: StorageReport,
    /// Names of undriven, unasserted signals assumed always stable (§2.5).
    pub assumed_stable: Vec<String>,
    /// Notes about generated signals whose clock assertion pins them.
    pub clock_driver_notes: Vec<String>,
    /// `(full signal name, settled waveform)`, sorted by name — the data
    /// behind the Fig 3-10 summary and the timing diagram.
    pub waves: Vec<(String, Waveform)>,
    /// Clock period, for interpreting wrapping spans.
    pub period: Time,
    /// Distribution-valued arrival/slack results, when the caller ran a
    /// probabilistic analysis (`scald-tv --prob`). `None` — and omitted
    /// from the JSON document — otherwise.
    pub probabilistic: Option<ProbSection>,
}

impl Report {
    /// Total violations across all cases.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|c| c.violations.len()).sum()
    }

    /// `true` if every case is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cases.iter().all(CaseResult::is_clean)
    }

    /// A copy of the report with all *effort* counters zeroed: engine and
    /// per-case events/evaluations, the worker count, and the wall clock.
    ///
    /// Everything that remains — violations with provenance, slack,
    /// storage, value records, waveforms, cross-references — is a pure
    /// function of the settled fixed point, so two runs that reach the
    /// same fixed point by different routes (a cold run vs. a
    /// warm-started `scald-incr` re-verification, serial vs. parallel
    /// case analysis) produce byte-identical stripped reports. Used by
    /// the `--baseline` diff and the incremental-vs-cold property tests.
    #[must_use]
    pub fn strip_effort(&self) -> Report {
        let mut r = self.clone();
        r.engine.jobs = 0;
        r.engine.case_strategy = CaseStrategy::default();
        r.engine.events = 0;
        r.engine.evaluations = 0;
        r.engine.verify_wall = None;
        r.engine.eval_cache = None;
        for case in &mut r.cases {
            case.events = 0;
            case.evaluations = 0;
        }
        r
    }

    /// The signal-value summary listing of Fig 3-10.
    #[must_use]
    pub fn summary_text(&self) -> String {
        format_summary(&self.waves)
    }

    /// An ASCII timing diagram of all signals, `columns` buckets wide.
    #[must_use]
    pub fn diagram_text(&self, columns: usize) -> String {
        crate::diagram::render_diagram(&self.waves, columns)
    }

    /// The §2.5 cross-reference listing of assumed-stable signals.
    #[must_use]
    pub fn xref_text(&self) -> String {
        format_xref(&self.assumed_stable, &self.clock_driver_notes)
    }

    /// The per-checker slack table, worst margins first.
    #[must_use]
    pub fn slack_text(&self) -> String {
        let fmt_slack =
            |s: Option<Time>| s.map_or_else(|| "     -".to_owned(), |t| format!("{t:>6}"));
        let mut out = format!(
            "{:<40} {:>8} {:>8} {:>8}\n",
            "CHECKER", "SETUP", "HOLD", "PULSE"
        );
        for m in &self.slack {
            out.push_str(&format!(
                "{:<40} {:>8} {:>8} {:>8}\n",
                m.checker,
                fmt_slack(m.setup_slack),
                fmt_slack(m.hold_slack),
                fmt_slack(m.pulse_slack)
            ));
        }
        out
    }

    /// The Table 3-3 storage breakdown.
    #[must_use]
    pub fn storage_text(&self) -> String {
        format!("{}\n", self.storage)
    }

    /// The probabilistic timing listing, one endpoint per line, when the
    /// section is present.
    #[must_use]
    pub fn probabilistic_text(&self) -> Option<String> {
        let prob = self.probabilistic.as_ref()?;
        let mut out = format!(
            "probabilistic timing at rho = {} ({} endpoint(s)):\n",
            prob.rho,
            prob.endpoints.len()
        );
        for e in &prob.endpoints {
            out.push_str(&format!("{e}\n"));
        }
        Some(out)
    }

    /// The full document as a [`Json`] value — callers (like `scald-tv`)
    /// may append extra top-level sections before printing.
    #[must_use]
    pub fn json_value(&self) -> Json {
        let mut doc;
        let engine = Json::Obj(vec![
            ("signals".into(), Json::from(self.engine.signals as u64)),
            ("prims".into(), Json::from(self.engine.prims as u64)),
            ("cases".into(), Json::from(self.engine.cases as u64)),
            ("jobs".into(), Json::from(self.engine.jobs as u64)),
            // Schema v1 additive extension: which case-scheduling path
            // the run resolved to ("auto" until the engine has run).
            (
                "case_strategy".into(),
                Json::Str(self.engine.case_strategy.as_str().into()),
            ),
            ("events".into(), Json::from(self.engine.events)),
            ("evaluations".into(), Json::from(self.engine.evaluations)),
            (
                "wall_ns".into(),
                self.engine.verify_wall.map_or(Json::Null, |d| {
                    Json::from(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                }),
            ),
            // Schema v1 additive extension: cache counters are null when
            // the evaluation cache is disabled (`--no-eval-cache`).
            (
                "cache_hits".into(),
                self.engine
                    .eval_cache
                    .map_or(Json::Null, |c| Json::from(c.hits)),
            ),
            (
                "cache_misses".into(),
                self.engine
                    .eval_cache
                    .map_or(Json::Null, |c| Json::from(c.misses)),
            ),
            (
                "cache_entries".into(),
                self.engine
                    .eval_cache
                    .map_or(Json::Null, |c| Json::from(c.entries as u64)),
            ),
            ("period_ns".into(), Json::from(self.period.as_ns())),
        ]);
        let slack_ns = |s: Option<Time>| s.map_or(Json::Null, |t| Json::from(t.as_ns()));
        let slack = Json::Arr(
            self.slack
                .iter()
                .map(|m| {
                    Json::Obj(vec![
                        ("checker".into(), Json::str(&m.checker)),
                        ("signal".into(), Json::str(&m.signal)),
                        ("setup_slack_ns".into(), slack_ns(m.setup_slack)),
                        ("hold_slack_ns".into(), slack_ns(m.hold_slack)),
                        ("pulse_slack_ns".into(), slack_ns(m.pulse_slack)),
                    ])
                })
                .collect(),
        );
        let storage = Json::Obj(vec![
            (
                "rows".into(),
                Json::Arr(
                    self.storage
                        .rows()
                        .into_iter()
                        .map(|(area, bytes, _pct)| {
                            Json::Obj(vec![
                                ("area".into(), Json::str(area)),
                                ("bytes".into(), Json::from(bytes as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_bytes".into(),
                Json::from(self.storage.total() as u64),
            ),
            (
                "value_records_per_signal".into(),
                Json::from(self.storage.value_records_per_signal()),
            ),
        ]);
        let summary = Json::Arr(
            self.waves
                .iter()
                .map(|(name, wave)| {
                    Json::Obj(vec![
                        ("signal".into(), Json::str(name)),
                        ("wave".into(), Json::str(wave.to_string())),
                    ])
                })
                .collect(),
        );
        doc = Json::Obj(vec![
            ("schema".into(), Json::str(REPORT_SCHEMA)),
            ("version".into(), Json::from(REPORT_VERSION)),
            ("design".into(), Json::str(&self.design)),
            ("clean".into(), Json::from(self.is_clean())),
            (
                "total_violations".into(),
                Json::from(self.total_violations() as u64),
            ),
            ("engine".into(), engine),
            (
                "cases".into(),
                Json::Arr(self.cases.iter().map(CaseResult::json_value).collect()),
            ),
            ("slack".into(), slack),
            ("storage".into(), storage),
            (
                "assumed_stable".into(),
                Json::Arr(self.assumed_stable.iter().map(Json::str).collect()),
            ),
            ("summary".into(), summary),
        ]);
        // Schema v2: the probabilistic section is omitted (not null) when
        // absent, so v1 consumers see a byte-for-byte v1 document.
        if let (Json::Obj(fields), Some(prob)) = (&mut doc, &self.probabilistic) {
            fields.push(("probabilistic".into(), prob.json_value()));
        }
        doc
    }

    /// The versioned JSON document, pretty-printed (see the
    /// module docs in `report.rs` for the schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.json_value().to_string_pretty()
    }
}

/// Formats the Fig 3-10 signal-value summary from sorted waveform rows.
pub(crate) fn format_summary(waves: &[(String, Waveform)]) -> String {
    let width = waves.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, wave) in waves {
        out.push_str(&format!("{name:width$}  {wave}\n"));
    }
    out
}

/// Formats the §2.5 assumed-stable cross-reference listing.
pub(crate) fn format_xref(assumed_stable: &[String], clock_driver_notes: &[String]) -> String {
    let mut out = String::from("SIGNALS ASSUMED ALWAYS STABLE (no assertion, not generated):\n");
    for name in assumed_stable {
        out.push_str(&format!("  {name}\n"));
    }
    for note in clock_driver_notes {
        out.push_str(&format!(
            "NOTE: {note} carries a clock assertion and is also generated; \
             the asserted (de-skewed) timing is used.\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_resembles_fig_3_11() {
        let v = Violation {
            kind: ViolationKind::Setup,
            source: "ADR CHK".to_owned(),
            constraint: "SETUP TIME = 3.5, HOLD TIME = 1.0".to_owned(),
            missed_by: Some(Time::from_ns(3.5)),
            at: None,
            observed: vec![
                "CK INPUT  = WE: 0 0.0 R 11.5 1 13.5".to_owned(),
                "DATA INPUT = ADR: S 0.0 C 0.5 S 11.5".to_owned(),
            ],
            provenance: None,
        };
        let text = v.to_string();
        assert!(text.contains("SETUP TIME VIOLATED"));
        assert!(text.contains("VIOLATED BY 3.5 NSEC"));
        assert!(text.contains("DATA INPUT = ADR"));
        assert!(v.missed_by_at_least(Time::from_ns(3.0)));
        assert!(!v.missed_by_at_least(Time::from_ns(4.0)));
    }

    #[test]
    fn violation_display_includes_provenance_chain() {
        let period = Time::from_ns(50.0);
        let v = Violation {
            kind: ViolationKind::Hold,
            source: "CHK".to_owned(),
            constraint: String::new(),
            missed_by: None,
            at: None,
            observed: Vec::new(),
            provenance: Some(Provenance {
                hops: vec![
                    ProvenanceHop {
                        signal: "BUS".to_owned(),
                        depth: 0,
                        via: Some("TOP/RAM#6".to_owned()),
                        arrival: vec![Span::new(Time::from_ns(0.5), Time::from_ns(4.0), period)],
                    },
                    ProvenanceHop {
                        signal: "ADR .S0-2".to_owned(),
                        depth: 1,
                        via: None,
                        arrival: Vec::new(),
                    },
                ],
                truncated: true,
            }),
        };
        let text = v.to_string();
        assert!(text.contains("FAN-IN PROVENANCE"), "{text}");
        assert!(
            text.contains("BUS <- TOP/RAM#6, changing 0.5..4.5"),
            "{text}"
        );
        assert!(text.contains("ADR .S0-2 (source), quiescent"), "{text}");
        assert!(text.contains("cone truncated"), "{text}");
    }

    #[test]
    fn case_result_filters() {
        let mk = |kind| Violation {
            kind,
            source: String::new(),
            constraint: String::new(),
            missed_by: None,
            at: None,
            observed: Vec::new(),
            provenance: None,
        };
        let r = CaseResult {
            name: "case 1".to_owned(),
            violations: vec![mk(ViolationKind::Setup), mk(ViolationKind::Hazard)],
            events: 10,
            evaluations: 12,
            value_records: 0,
        };
        assert!(!r.is_clean());
        assert_eq!(r.of_kind(ViolationKind::Setup).len(), 1);
        assert_eq!(r.of_kind(ViolationKind::Hold).len(), 0);
        assert!(r.to_string().contains("case 1"));
    }

    #[test]
    fn kind_tokens_are_lower_snake() {
        for kind in [
            ViolationKind::Setup,
            ViolationKind::Hold,
            ViolationKind::StableWhileTrue,
            ViolationKind::MinPulseHigh,
            ViolationKind::MinPulseLow,
            ViolationKind::Hazard,
            ViolationKind::AssertionViolated,
            ViolationKind::UndefinedClock,
        ] {
            let t = kind.token();
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{t}");
        }
    }
}
