//! Evaluator matrix: engine-level behaviour of every primitive kind not
//! already pinned down by the scenario tests — inverting gates, wide
//! muxes, SR latches, delays carrying directives, and constants.

use scald_logic::Value;
use scald_netlist::{Config, Conn, NetlistBuilder, PrimKind, SignalId};
use scald_verifier::{RunOptions, Verifier};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

/// Runs a single-gate circuit over two constant-ish inputs and returns
/// the settled output waveform value at 30 ns.
fn gate_value(kind: PrimKind, a: Value, b_val: Value) -> Value {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let sa = b.signal("A").unwrap();
    let sb = b.signal("B").unwrap();
    let q = b.signal("Q").unwrap();
    b.constant("KA", a, sa);
    b.constant("KB", b_val, sb);
    b.gate("G", kind, DelayRange::ZERO, [z(sa), z(sb)], q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    v.resolved(q).value_at(ns(30.0))
}

#[test]
fn inverting_gates_through_engine() {
    use Value::*;
    assert_eq!(gate_value(PrimKind::Nand, One, One), Zero);
    assert_eq!(gate_value(PrimKind::Nand, Zero, One), One);
    assert_eq!(gate_value(PrimKind::Nor, Zero, Zero), One);
    assert_eq!(gate_value(PrimKind::Nor, One, Zero), Zero);
    assert_eq!(gate_value(PrimKind::Xnor, One, One), One);
    assert_eq!(gate_value(PrimKind::Xnor, One, Zero), Zero);
    assert_eq!(gate_value(PrimKind::Xor, One, Zero), One);
}

#[test]
fn wide_mux_routes_by_known_select() {
    // A 4-input mux with a phase-known select: during select = 1 phases
    // the chosen leg's value appears.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let sel = b.signal("SEL .P0-4 (0,0)").unwrap(); // 1 first half, 0 second
    let d0 = b.signal("D0").unwrap();
    let d1 = b.signal("D1").unwrap();
    let d2 = b.signal("D2").unwrap();
    let d3 = b.signal("D3").unwrap();
    let q = b.signal("Q").unwrap();
    b.constant("K0", Value::Zero, d0);
    b.constant("K1", Value::One, d1);
    b.constant("K2", Value::Zero, d2);
    b.constant("K3", Value::One, d3);
    b.prim(
        "WMUX",
        PrimKind::Mux { data: 4 },
        DelayRange::ZERO,
        vec![z(sel), z(d0), z(d1), z(d2), z(d3)],
        Some(q),
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // First half: select = 1 -> leg 1 (One); second half: select = 0 ->
    // leg 0 (Zero).
    assert_eq!(w.value_at(ns(10.0)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(40.0)), Value::Zero, "{w}");
}

#[test]
fn latch_sr_forced_by_set() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let en = b.signal("EN .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let set = b.signal("SET").unwrap();
    let rst = b.signal("RST").unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.constant("KS", Value::One, set);
    b.constant("KR", Value::Zero, rst);
    b.latch_sr(
        "L",
        DelayRange::from_ns(1.0, 2.0),
        z(en),
        z(d),
        z(set),
        z(rst),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    assert!(w.is_constant(), "{w}");
    assert_eq!(w.value_at(Time::ZERO), Value::One);
}

#[test]
fn latch_sr_both_asserted_is_undefined() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let en = b.signal("EN .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let set = b.signal("SET").unwrap();
    let rst = b.signal("RST").unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.constant("KS", Value::One, set);
    b.constant("KR", Value::One, rst);
    b.latch_sr(
        "L",
        DelayRange::from_ns(1.0, 2.0),
        z(en),
        z(d),
        z(set),
        z(rst),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    assert_eq!(v.resolved(q).value_at(ns(25.0)), Value::Unknown);
}

#[test]
fn delay_element_shifts_and_skews() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .P2-3 (0,0)").unwrap();
    let q = b.signal("Q").unwrap();
    b.delay("DLY", DelayRange::from_ns(5.0, 7.0), z(a), q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Clock high 12.5..18.75 shifted by 5..7: rise window 17.5..19.5.
    assert_eq!(w.value_at(ns(17.0)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(18.0)), Value::Rise, "{w}");
    assert_eq!(w.value_at(ns(19.5)), Value::One, "{w}");
    // And the pulse width survives the skew (separated representation):
    // fall window starts at 18.75+5 = 23.75.
    assert_eq!(w.value_at(ns(23.0)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(24.0)), Value::Fall, "{w}");
}

#[test]
fn delay_element_consumes_directive_string() {
    // A W directive on a Delay element zeroes its wire but keeps the
    // element delay; the tail travels to the next level.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .P2-3 (0,0)").unwrap();
    let m = b.signal("M").unwrap();
    let q = b.signal("Q").unwrap();
    let one = b.signal("ONE").unwrap();
    b.constant("K1", Value::One, one);
    // "WZ": level 1 (the delay) zeroes its wire; level 2 (the AND) zeroes
    // wire+gate.
    b.prim(
        "DLY",
        PrimKind::Delay,
        DelayRange::from_ns(3.0, 3.0),
        vec![Conn::new(a).with_directive("WZ")],
        Some(m),
    );
    b.and2("G", DelayRange::from_ns(2.0, 4.0), Conn::new(m), z(one), q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Clock rise 12.5 + delay 3 (exact) + zero for the AND = 15.5.
    assert_eq!(w.value_at(ns(15.4)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(15.5)), Value::One, "{w}");
}

#[test]
fn constants_drive_their_value() {
    for val in [Value::Zero, Value::One] {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let q = b.signal("Q").unwrap();
        b.constant("K", val, q);
        let mut v = Verifier::new(b.finish().unwrap());
        v.run(&RunOptions::new()).unwrap();
        assert_eq!(v.resolved(q).value_at(ns(10.0)), val);
    }
}

#[test]
fn chg_multi_input_changing_windows_union() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .S0-2").unwrap(); // changing 12.5..50
    let c = b.signal("B .S4-6").unwrap(); // changing 37.5..25 (wraps)
    let q = b.signal("Q").unwrap();
    b.chg("SUM", DelayRange::ZERO, [z(a), z(c)], q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Stable only where both are stable: A stable 0..12.5, B stable
    // 25..37.5: intersection is empty except... A stable 0..12.5 and B
    // stable 25..37.5 do not overlap, so Q is changing everywhere except
    // where both stable — nowhere. Check a few points.
    assert!(w.value_at(ns(20.0)).is_transitioning(), "{w}");
    assert!(w.value_at(ns(40.0)).is_transitioning(), "{w}");
    assert!(w.value_at(ns(5.0)).is_transitioning(), "{w}");
}
