//! Seed-engine equality: the data-oriented (CSR + struct-of-arrays)
//! refactor must produce a byte-identical report on the shipped
//! 400-chip S-1-alike. The golden file under `tests/data/` was captured
//! from the pre-refactor engine; any divergence means the refactor
//! changed observable behaviour, not just layout.
//!
//! Regenerate (only when the report schema itself changes, never to
//! paper over an engine diff) with:
//! `SCALD_WRITE_GOLDEN=1 cargo test -p scald-verifier --test soa_golden`

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_verifier::{RunOptions, VerifierBuilder};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_s1_400.json");

#[test]
fn report_matches_seed_engine_golden_on_400_chip_design() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        seed: 0x5ca1d,
    });
    let mut verifier = VerifierBuilder::new(netlist).build();
    let outcome = verifier
        .run(&RunOptions::new().jobs(1))
        .expect("the 400-chip design settles");
    let mut report = verifier.report("golden_s1_400", &outcome.cases);
    // Wall clock is the only nondeterministic field; jobs is config.
    report.engine.jobs = 0;
    report.engine.verify_wall = None;
    let json = report.to_json().to_string();

    if std::env::var_os("SCALD_WRITE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &json).expect("write golden report");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden report present (regenerate with SCALD_WRITE_GOLDEN=1)");
    assert_eq!(
        json, golden,
        "refactored engine diverged from the seed-engine golden report"
    );
}
