//! Property tests for the level-synchronized (wave) settle engine: for
//! any worker budget, a run must produce a byte-identical report and —
//! after partitioning worker-interleaved streams by case — an identical
//! ordered trace stream, including when the oscillation budget trips in
//! the middle of a wave. (`parallel_cases.rs` covers the case fan-out
//! dimension; this file covers settling *inside* one case.)

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder};
use scald_rng::Rng;
use scald_trace::{json, TimelineSink, TraceEvent, TraceSink};
use scald_verifier::{
    Case, CaseSet, CheckpointPolicy, Report, RunOptions, Verifier, VerifierBuilder, VerifyError,
};
use scald_wave::DelayRange;

/// A sink that keeps every event as its JSONL line, in arrival order.
#[derive(Default)]
struct CollectSink(Mutex<Vec<String>>);

impl TraceSink for CollectSink {
    fn record(&self, event: &TraceEvent<'_>) {
        self.0
            .lock()
            .expect("collect sink poisoned")
            .push(event.to_json().to_string());
    }
}

/// Partitions a trace stream into per-case ordered sub-streams and
/// normalizes away the only legitimately nondeterministic fields
/// (`wall_nanos`) and the only configuration-dependent one (`jobs`).
///
/// Within one settle loop all events come from the single commit thread
/// in commit order, so each partition must match byte-for-byte across
/// worker budgets; only the interleaving *between* case workers (and the
/// position of the global run_start/run_end markers) may differ.
fn partition(lines: &[String]) -> BTreeMap<String, Vec<String>> {
    let mut parts: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in lines {
        let mut v = json::parse(line).expect("sink lines are valid JSON");
        let key = match v.get("case") {
            None => "global".to_owned(),
            Some(json::Json::Null) => "base".to_owned(),
            Some(c) => format!("case {c}"),
        };
        if let json::Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "wall_nanos" && k != "jobs");
        }
        parts.entry(key).or_default().push(v.to_string());
    }
    parts
}

/// Report JSON with the two fields that may differ across worker budgets
/// (pool size, wall clock) cleared. Events and evaluations are kept:
/// the wave engine's *trajectory*, not just its fixed point, must be
/// budget-independent.
fn canonical_report(report: &mut Report) -> String {
    report.engine.jobs = 0;
    report.engine.verify_wall = None;
    report.to_json().to_string()
}

/// One seeded verification: run `cases` under `jobs` workers with a
/// collecting sink; return the canonical report and partitioned trace.
fn run_traced(
    netlist: &Netlist,
    cases: &[Case],
    jobs: usize,
) -> (String, BTreeMap<String, Vec<String>>) {
    let sink = Arc::new(CollectSink::default());
    let mut v = VerifierBuilder::new(netlist.clone())
        .trace(sink.clone())
        .build();
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(CaseSet::list(cases.iter().cloned()))
                .jobs(jobs),
        )
        .expect("seeded designs settle");
    let mut report = v.report("parallel_settle", &outcome.cases);
    let lines = sink.0.lock().expect("collect sink poisoned").clone();
    (canonical_report(&mut report), partition(&lines))
}

/// The headline property, over 50+ seeded designs: report JSON and
/// per-case trace streams are byte-identical for 1, 2 and N workers.
#[test]
fn fifty_seeded_designs_settle_identically_for_any_worker_count() {
    let mut rng = Rng::seed_from_u64(0x5e771e);
    let n = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(3);
    let mut designs = 0usize;
    while designs < 50 {
        designs += 1;
        let (netlist, _) = s1_like_netlist(S1Options {
            chips: rng.range_usize(6, 30),
            seed: rng.next_u64(),
        });
        // Half the designs also exercise the case fan-out so the split
        // worker budget (case workers × wave width) is covered.
        let cases = if designs.is_multiple_of(2) {
            vec![
                Case::new().assign(format!("CTL {}", rng.range_u32(0, 24)), rng.bool()),
                Case::new().assign(format!("CTL {}", rng.range_u32(0, 24)), rng.bool()),
            ]
        } else {
            Vec::new()
        };

        let (base_report, base_trace) = run_traced(&netlist, &cases, 1);
        assert!(
            base_trace.contains_key("base"),
            "design {designs}: no base settle stream"
        );
        assert!(
            base_trace["base"]
                .iter()
                .any(|l| l.contains("\"type\":\"wave\"")),
            "design {designs}: base stream has no wave events"
        );
        for jobs in [2, n] {
            let (report, trace) = run_traced(&netlist, &cases, jobs);
            assert_eq!(report, base_report, "design {designs}, jobs={jobs}");
            assert_eq!(trace, base_trace, "design {designs}, jobs={jobs}");
        }
    }
    assert!(designs >= 50);
}

/// Two independent clocked inverter rings whose 2 ps feedback delays
/// generate new edge positions every pass: settling never reaches a
/// fixed point, so a finite oscillation budget always trips — and with
/// two rings the waves are more than one primitive wide, so some budget
/// values trip *between* two commits of the same wave.
fn twin_ring_netlist() -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    let clk = b.signal("CK .P0-4 (0,0)").unwrap();
    for ring in 0..2 {
        let fb = b.signal(&format!("FB {ring}")).unwrap();
        let out = b.signal(&format!("OUT {ring}")).unwrap();
        b.not(
            format!("INV {ring}"),
            DelayRange::from_ns(0.002, 0.002),
            w(out),
            fb,
        );
        b.and2(format!("A {ring}"), DelayRange::ZERO, w(fb), w(clk), out);
    }
    b.finish().unwrap()
}

/// Budget exhaustion is deterministic for every worker count and every
/// budget value — including budgets that land mid-wave, which the test
/// proves it exercised by finding a run whose committed evaluations are
/// not covered by completed wave events.
#[test]
fn oscillation_budget_trips_identically_mid_wave() {
    let netlist = twin_ring_netlist();
    let mut saw_mid_wave = false;
    for budget in 4..=16u64 {
        let sink = Arc::new(TimelineSink::every(1));
        let mut serial = VerifierBuilder::new(netlist.clone())
            .oscillation_budget(budget)
            .trace(sink.clone())
            .build();
        let serial_err = serial.run(&RunOptions::new().jobs(1)).unwrap_err();
        match &serial_err {
            VerifyError::Oscillation {
                evaluations,
                active,
            } => {
                assert_eq!(*evaluations, budget + 1, "error trips on the first excess");
                assert!(!active.is_empty());
            }
            other => panic!("budget {budget}: expected Oscillation, got {other:?}"),
        }
        // Evaluations committed beyond the last *completed* wave mean
        // the budget tripped with the wave partially committed.
        let waved: usize = sink.waves().iter().map(|s| s.size).sum();
        assert!(waved as u64 <= budget + 1);
        if (waved as u64) < budget + 1 && waved > 0 {
            saw_mid_wave = true;
        }

        for jobs in [2, 4] {
            let mut par = VerifierBuilder::new(netlist.clone())
                .oscillation_budget(budget)
                .build();
            let par_err = par.run(&RunOptions::new().jobs(jobs)).unwrap_err();
            assert_eq!(par_err, serial_err, "budget {budget}, jobs={jobs}");
            assert_eq!(par.total_evaluations(), serial.total_evaluations());
        }
    }
    assert!(saw_mid_wave, "no tested budget tripped mid-wave");
}

/// `CheckpointPolicy::SettledBase` hands back a verifier frozen right
/// after the base settle: re-running the cases on it reproduces the
/// original per-case results minus the base effort the cold run folds
/// into case 0, with no renewed base-settle work.
#[test]
fn checkpoint_resumes_at_the_settled_base() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 60,
        seed: 0x5ca1d,
    });
    let cases = vec![
        Case::new().assign("CTL 3", true),
        Case::new().assign("CTL 5", false),
    ];
    let mut v = Verifier::new(netlist);
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(CaseSet::list(cases.clone()))
                .jobs(2)
                .checkpoint(CheckpointPolicy::SettledBase),
        )
        .unwrap();
    assert!(outcome.base.full_settle, "cold run settles the base");
    assert!(outcome.base.evaluations > 0);

    let mut warm = *outcome.checkpoint.expect("checkpoint was requested");
    let warm_out = warm
        .run(&RunOptions::new().cases(CaseSet::list(cases)).jobs(1))
        .unwrap();
    assert!(!warm_out.base.full_settle, "base was already settled");
    assert_eq!(warm_out.base.evaluations, 0);
    assert!(warm_out.checkpoint.is_none(), "default policy keeps none");

    let mut expected = outcome.cases.clone();
    expected[0].events -= outcome.base.events;
    expected[0].evaluations -= outcome.base.evaluations;
    assert_eq!(format!("{:?}", warm_out.cases), format!("{expected:?}"));
}

/// The wave telemetry itself: `TimelineSink::waves` captures one sample
/// per committed wave, with consecutive ordinals, non-empty waves, a
/// drained final worklist, and sizes that sum to the evaluations of the
/// settle loop that emitted them.
#[test]
fn timeline_sink_records_committed_waves() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 40,
        seed: 0x5ca1d,
    });
    let sink = Arc::new(TimelineSink::every(1));
    let mut v = VerifierBuilder::new(netlist).trace(sink.clone()).build();
    let outcome = v.run(&RunOptions::new()).unwrap();

    let base_waves: Vec<_> = sink
        .waves()
        .into_iter()
        .filter(|s| s.case.is_none())
        .collect();
    assert!(!base_waves.is_empty());
    for (i, s) in base_waves.iter().enumerate() {
        assert_eq!(s.ordinal, i as u64 + 1, "wave ordinals are consecutive");
        assert!(s.size > 0, "committed waves are never empty");
    }
    assert_eq!(
        base_waves.last().unwrap().depth,
        0,
        "the last wave drains the worklist"
    );
    assert_eq!(
        base_waves.iter().map(|s| s.size as u64).sum::<u64>(),
        outcome.base.evaluations,
        "wave sizes account for every base evaluation"
    );
    // The sole injected case has no overrides to propagate.
    assert_eq!(outcome.sole().evaluations, outcome.base.evaluations);
}
