//! Property tests for the evaluation memo table: the cache is an
//! invisible accelerator. For any worker budget, a cache-enabled run
//! must produce a report and per-case trace streams byte-identical to
//! the uncached engine — only the effort counters (the `cache_stats`
//! trace event and `EngineStats::eval_cache`) may differ, and those are
//! normalized away here exactly as `wall_nanos` is. (`parallel_settle.rs`
//! proves worker-count independence of the uncached engine; this file
//! proves cache-on/cache-off equivalence on top of it.)

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_netlist::Netlist;
use scald_rng::Rng;
use scald_trace::{json, TraceEvent, TraceSink};
use scald_verifier::{Case, CaseSet, EvalCache, Report, RunOptions, VerifierBuilder};

/// A sink that keeps every event as its JSONL line, in arrival order.
#[derive(Default)]
struct CollectSink(Mutex<Vec<String>>);

impl TraceSink for CollectSink {
    fn record(&self, event: &TraceEvent<'_>) {
        self.0
            .lock()
            .expect("collect sink poisoned")
            .push(event.to_json().to_string());
    }
}

/// Partitions a trace stream into per-case ordered sub-streams,
/// normalizing away the legitimately varying fields (`wall_nanos`,
/// `jobs`) and dropping the `cache_stats` effort event — the one trace
/// line the cache is allowed to add.
fn partition(lines: &[String]) -> BTreeMap<String, Vec<String>> {
    let mut parts: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in lines {
        if line.contains("\"type\":\"cache_stats\"") {
            continue;
        }
        let mut v = json::parse(line).expect("sink lines are valid JSON");
        let key = match v.get("case") {
            None => "global".to_owned(),
            Some(json::Json::Null) => "base".to_owned(),
            Some(c) => format!("case {c}"),
        };
        if let json::Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "wall_nanos" && k != "jobs");
        }
        parts.entry(key).or_default().push(v.to_string());
    }
    parts
}

/// Report JSON with the fields that may differ across worker budgets and
/// cache configurations (pool size, wall clock, cache counters) cleared.
fn canonical_report(report: &mut Report) -> String {
    report.engine.jobs = 0;
    report.engine.verify_wall = None;
    report.engine.eval_cache = None;
    report.to_json()
}

/// One seeded verification under `jobs` workers with the memo table on
/// or off; returns the canonical report, the partitioned trace, and the
/// cache's hit count (0 when disabled).
fn run_traced(
    netlist: &Netlist,
    cases: &[Case],
    jobs: usize,
    cached: bool,
) -> (String, BTreeMap<String, Vec<String>>, u64) {
    let sink = Arc::new(CollectSink::default());
    let mut v = VerifierBuilder::new(netlist.clone())
        .eval_cache(cached)
        .trace(sink.clone())
        .build();
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(CaseSet::list(cases.iter().cloned()))
                .jobs(jobs),
        )
        .expect("seeded designs settle");
    let mut report = v.report("eval_cache", &outcome.cases);
    let hits = v.eval_cache_stats().map_or(0, |s| s.hits);
    let lines = sink.0.lock().expect("collect sink poisoned").clone();
    (canonical_report(&mut report), partition(&lines), hits)
}

/// The headline property, over 50+ seeded designs: with the cache on,
/// report JSON and per-case trace streams are byte-identical to the
/// uncached serial engine for 1, 2 and N workers — and the cache is not
/// vacuous (it hits on at least some designs).
#[test]
fn fifty_seeded_designs_verify_identically_with_and_without_the_cache() {
    let mut rng = Rng::seed_from_u64(0xcac4e);
    let n = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(3);
    let mut designs = 0usize;
    let mut total_hits = 0u64;
    while designs < 50 {
        designs += 1;
        let (netlist, _) = s1_like_netlist(S1Options {
            chips: rng.range_usize(4, 14),
            seed: rng.next_u64(),
        });
        // Even designs exercise the case fan-out: repeated assignments
        // across cases are exactly where cross-case memoization bites.
        let cases = if designs.is_multiple_of(2) {
            let ctl = rng.range_u32(0, 24);
            vec![
                Case::new().assign(format!("CTL {ctl}"), rng.bool()),
                Case::new().assign(format!("CTL {}", rng.range_u32(0, 24)), rng.bool()),
                Case::new().assign(format!("CTL {ctl}"), rng.bool()),
            ]
        } else {
            Vec::new()
        };

        let (base_report, base_trace, _) = run_traced(&netlist, &cases, 1, false);
        for jobs in [1, 2, n] {
            let (report, trace, hits) = run_traced(&netlist, &cases, jobs, true);
            assert_eq!(report, base_report, "design {designs}, jobs={jobs}");
            assert_eq!(trace, base_trace, "design {designs}, jobs={jobs}");
            total_hits += hits;
        }
    }
    assert!(designs >= 50);
    assert!(total_hits > 0, "the memo table never hit across the sweep");
}

/// The counters surface exactly when the cache is enabled: `report()`
/// carries `EngineStats::eval_cache` (and non-null JSON fields), the
/// trace stream ends with one `cache_stats` event — and a disabled
/// engine emits neither.
#[test]
fn cache_counters_surface_only_when_enabled() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 20,
        seed: 0x5ca1d,
    });

    let sink = Arc::new(CollectSink::default());
    let mut on = VerifierBuilder::new(netlist.clone())
        .trace(sink.clone())
        .build();
    let outcome = on.run(&RunOptions::new()).unwrap();
    let stats = on.eval_cache_stats().expect("cache defaults to on");
    assert!(stats.misses > 0, "a cold run must miss");
    assert!(stats.entries > 0);
    let report = on.report("on", &outcome.cases);
    assert_eq!(report.engine.eval_cache, Some(stats));
    let json = report.to_json();
    assert!(json.contains("\"cache_misses\":"), "{json}");
    assert!(!json.contains("\"cache_misses\": null"), "{json}");
    let lines = sink.0.lock().unwrap().clone();
    let cache_lines: Vec<_> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"cache_stats\""))
        .collect();
    assert_eq!(cache_lines.len(), 1, "one effort event per run");
    assert!(
        lines.last().unwrap().contains("\"type\":\"run_end\""),
        "cache_stats precedes run_end"
    );

    let sink = Arc::new(CollectSink::default());
    let mut off = VerifierBuilder::new(netlist)
        .eval_cache(false)
        .trace(sink.clone())
        .build();
    let outcome = off.run(&RunOptions::new()).unwrap();
    assert_eq!(off.eval_cache_stats(), None);
    let report = off.report("off", &outcome.cases);
    assert_eq!(report.engine.eval_cache, None);
    assert!(report.to_json().contains("\"cache_hits\": null"));
    let lines = sink.0.lock().unwrap().clone();
    assert!(
        !lines.iter().any(|l| l.contains("\"type\":\"cache_stats\"")),
        "disabled engine must not emit cache_stats"
    );
}

/// A shared table serves a second verifier of the identical design
/// entirely from cache: no new misses, only hits — the mechanism
/// `scald-incr` sessions lean on across re-verifications.
#[test]
fn shared_cache_replays_an_identical_design_without_missing() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 30,
        seed: 0xeca1,
    });
    let cache = Arc::new(EvalCache::new());

    let mut first = VerifierBuilder::new(netlist.clone())
        .shared_eval_cache(Arc::clone(&cache))
        .build();
    let cold = first.run(&RunOptions::new()).unwrap();
    let cold_stats = cache.stats();
    assert!(cold_stats.misses > 0);

    let mut second = VerifierBuilder::new(netlist)
        .shared_eval_cache(Arc::clone(&cache))
        .build();
    let warm = second.run(&RunOptions::new()).unwrap();
    let warm_stats = cache.stats();
    assert_eq!(
        warm_stats.misses, cold_stats.misses,
        "an unchanged design re-verifies without a single cache miss"
    );
    assert!(warm_stats.hits > cold_stats.hits);
    assert_eq!(warm_stats.entries, cold_stats.entries);
    assert_eq!(
        format!("{:?}", warm.cases),
        format!("{:?}", cold.cases),
        "served-from-cache results equal computed ones"
    );
}

/// Per-verifier caches are private by default: two verifiers of the same
/// design each start cold unless a table is explicitly shared.
#[test]
fn private_caches_do_not_leak_between_verifiers() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 12,
        seed: 0xeca1,
    });
    let mut a = VerifierBuilder::new(netlist.clone()).build();
    a.run(&RunOptions::new()).unwrap();
    let mut b = VerifierBuilder::new(netlist).build();
    b.run(&RunOptions::new()).unwrap();
    let (sa, sb) = (a.eval_cache_stats().unwrap(), b.eval_cache_stats().unwrap());
    assert_eq!(sa.misses, sb.misses, "both verifiers ran cold");
    assert_eq!(sa.entries, sb.entries);
}
