//! Multi-level evaluation-directive propagation (§2.6, §2.8): the string
//! `"HZZW"` controls four successive levels of gating, each gate consuming
//! one letter and passing the tail downstream with its output value.

use scald_logic::Value;
use scald_netlist::{Config, Conn, NetlistBuilder, SignalId};
use scald_verifier::{RunOptions, Verifier, ViolationKind};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

/// A clock distributed through two gating levels with `"ZZ"`: both levels'
/// gate delays are zeroed, so the far end carries exactly the asserted
/// clock timing — the de-skewed clock-tree semantics of §2.6.
#[test]
fn zz_string_zeroes_two_levels() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let mid = b.signal("MID").unwrap();
    let far = b.signal("FAR").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "L1",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_directive("ZZ"),
        z(one),
        mid,
    );
    b.and2("L2", DelayRange::from_ns(2.0, 4.0), z(mid), z(one), far);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(far);
    // Both levels zeroed: FAR == asserted clock exactly.
    assert_eq!(w.value_at(ns(12.4)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(12.5)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(18.75)), Value::Zero, "{w}");
}

/// With only a single `"Z"`, the second level's delay applies: the string
/// is consumed level by level, not broadcast.
#[test]
fn single_z_consumed_at_first_level_only() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let mid = b.signal("MID").unwrap();
    let far = b.signal("FAR").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "L1",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_directive("Z"),
        z(one),
        mid,
    );
    b.and2("L2", DelayRange::from_ns(2.0, 4.0), z(mid), z(one), far);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(far);
    // Level 2's 2..4 ns delay applies: rise window 14.5..16.5.
    assert_eq!(w.value_at(ns(14.4)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(15.0)), Value::Rise, "{w}");
    assert_eq!(w.value_at(ns(16.5)), Value::One, "{w}");
}

/// `"ZA"`: zero the first gate, assert-check the second — the hazard check
/// fires at the level that consumed the `A`, with the control named there.
#[test]
fn za_string_checks_at_second_level() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    // A control that is changing while the clock is high.
    let late = b.signal("LATE CTL .S3-8").unwrap();
    let mid = b.signal("MID").unwrap();
    let far = b.signal("FAR").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "L1",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_directive("ZA"),
        z(one),
        mid,
    );
    b.and2("L2", DelayRange::ZERO, z(mid), z(late), far);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let hazards = r.of_kind(ViolationKind::Hazard);
    assert_eq!(hazards.len(), 1, "{r}");
    assert_eq!(hazards[0].source, "L2");
    assert!(hazards[0].observed.iter().any(|l| l.contains("LATE CTL")));
}

/// The assume-enabling side of `A` at the second level: the late control
/// does not corrupt the clock value passing through.
#[test]
fn za_string_assumes_enabling_at_second_level() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let late = b.signal("LATE CTL .S3-8").unwrap();
    let mid = b.signal("MID").unwrap();
    let far = b.signal("FAR").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "L1",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_directive("ZA"),
        z(one),
        mid,
    );
    b.and2("L2", DelayRange::ZERO, z(mid), z(late), far);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(far);
    // Without assume-enabling the changing control would make FAR `C`
    // while the clock is high; with it, FAR carries the clean clock pulse.
    assert_eq!(w.value_at(ns(15.0)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(30.0)), Value::Zero, "{w}");
}

/// An exhausted string stops acting: levels beyond its length evaluate
/// normally ("there is no limit on the length of a directive string" —
/// and no effect past its end).
#[test]
fn exhausted_string_stops_propagating() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let l1 = b.signal("L1 OUT").unwrap();
    let l2 = b.signal("L2 OUT").unwrap();
    let l3 = b.signal("L3 OUT").unwrap();
    b.constant("K1", Value::One, one);
    let d = DelayRange::from_ns(1.0, 1.0);
    b.and2("G1", d, Conn::new(clk).with_directive("ZZ"), z(one), l1);
    b.and2("G2", d, z(l1), z(one), l2);
    b.and2("G3", d, z(l2), z(one), l3);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    // Levels 1-2 zeroed, level 3 adds its exact 1 ns delay.
    let w = v.resolved(l3);
    assert_eq!(w.value_at(ns(13.4)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(13.5)), Value::One, "{w}");
}
