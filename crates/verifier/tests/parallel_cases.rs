//! Determinism and error-path coverage for the parallel case-analysis
//! engine (§2.7): `run` must produce byte-identical results for any
//! worker budget, and the engine's two error variants (`Oscillation`,
//! `UnknownCaseSignal`) must surface deterministically regardless of
//! scheduling. (`parallel_settle.rs` covers the intra-run wave engine;
//! this file covers the case fan-out dimension.)

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_netlist::{Config, Conn, NetlistBuilder};
use scald_verifier::{Case, CaseSet, RunOptions, Verifier, VerifyError};
use scald_wave::DelayRange;

/// Twelve cases over the generated design's global control signals —
/// comfortably past the issue's "≥ 8 cases" floor, mixing single- and
/// multi-signal assignments so dirtied cones differ per case.
fn s1_cases() -> CaseSet {
    let mut cases: Vec<Case> = (0..8)
        .map(|i| Case::new().assign(format!("CTL {i}"), i % 2 == 0))
        .collect();
    for i in 0..4 {
        cases.push(
            Case::new()
                .assign(format!("CTL {}", 2 * i), i % 2 == 0)
                .assign(format!("CTL {}", 2 * i + 1), i % 2 == 1),
        );
    }
    CaseSet::list(cases)
}

fn fresh_s1_verifier() -> Verifier {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 120,
        seed: 0x5ca1d,
    });
    Verifier::new(netlist)
}

/// One-worker, 2-worker, N-worker and default-budget runs all produce
/// output byte-identical to each other on a generated S-1-like design.
#[test]
fn parallel_matches_serial_for_1_2_and_n_workers() {
    let cases = s1_cases();
    assert!(cases.len() >= 8);

    let mut serial = fresh_s1_verifier();
    let baseline = format!(
        "{:?}",
        serial
            .run(&RunOptions::new().cases(cases.clone()).jobs(1))
            .unwrap()
            .cases
    );

    let n = std::thread::available_parallelism().map_or(4, usize::from);
    for jobs in [1, 2, n] {
        let mut v = fresh_s1_verifier();
        let got = format!(
            "{:?}",
            v.run(&RunOptions::new().cases(cases.clone()).jobs(jobs))
                .unwrap()
                .cases
        );
        assert_eq!(got, baseline, "jobs={jobs} diverged from serial");
    }

    let mut v = fresh_s1_verifier();
    let got = format!(
        "{:?}",
        v.run(&RunOptions::new().cases(cases.clone()))
            .unwrap()
            .cases
    );
    assert_eq!(got, baseline, "default-budget run diverged from serial");
}

/// Same property on a warm engine: a prior full `run` changes the
/// incremental bookkeeping (the base is already settled), and the
/// parallel path must agree with serial there too.
#[test]
fn parallel_matches_serial_on_warm_engine() {
    let cases = s1_cases();

    let mut serial = fresh_s1_verifier();
    serial.run(&RunOptions::new()).unwrap();
    let baseline = format!(
        "{:?}",
        serial
            .run(&RunOptions::new().cases(cases.clone()).jobs(1))
            .unwrap()
            .cases
    );

    let mut par = fresh_s1_verifier();
    par.run(&RunOptions::new()).unwrap();
    let got = format!(
        "{:?}",
        par.run(&RunOptions::new().cases(cases.clone()).jobs(4))
            .unwrap()
            .cases
    );
    assert_eq!(got, baseline);
}

/// `Verifier::new` is a thin alias for the all-defaults builder: both
/// constructors must yield verifiers producing identical reports.
#[test]
fn verifier_new_is_builder_alias() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 40,
        seed: 0x5ca1d,
    });

    let mut via_new = Verifier::new(netlist.clone());
    let r1 = via_new.run(&RunOptions::new()).unwrap();
    let mut via_builder = scald_verifier::VerifierBuilder::new(netlist).build();
    let r2 = via_builder.run(&RunOptions::new()).unwrap();

    assert_eq!(format!("{:?}", r1.cases), format!("{:?}", r2.cases));
    assert_eq!(
        via_new.report("alias", &r1.cases).to_json().to_string(),
        via_builder.report("alias", &r2.cases).to_json().to_string()
    );
}

/// A clocked inverter ring whose 2 ps feedback delay keeps generating
/// new edge positions every pass: the worst-case algebra never reaches a
/// periodic fixed point, so settling exhausts the evaluation budget.
/// (Because the algebra is worst-case, a loop live under any case
/// override is also live under the base's `S` — the error surfaces at
/// the base settle inside `run`, identically for every worker count.)
fn busy_ring_verifier() -> Verifier {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    // EN is undriven (assumed stable) so the cases below resolve.
    b.signal("EN").unwrap();
    let clk = b.signal("CK .P0-4 (0,0)").unwrap();
    let fb = b.signal("FB").unwrap();
    let out = b.signal("OUT").unwrap();
    b.not("INV", DelayRange::from_ns(0.002, 0.002), w(out), fb);
    b.and2("A", DelayRange::ZERO, w(fb), w(clk), out);
    Verifier::new(b.finish().unwrap())
}

#[test]
fn oscillation_exhausts_budget_identically_serial_and_parallel() {
    let cases = CaseSet::list([
        Case::new().assign("EN", true),
        Case::new().assign("EN", false),
        Case::new().assign("EN", true),
    ]);

    let serial_err = busy_ring_verifier()
        .run(&RunOptions::new().cases(cases.clone()).jobs(1))
        .unwrap_err();
    match &serial_err {
        VerifyError::Oscillation {
            evaluations,
            active,
        } => {
            assert!(*evaluations > 0, "budget exhaustion implies work done");
            assert!(!active.is_empty(), "oscillation names active primitives");
        }
        other => panic!("expected Oscillation, got {other:?}"),
    }

    for jobs in [2, 4] {
        let par_err = busy_ring_verifier()
            .run(&RunOptions::new().cases(cases.clone()).jobs(jobs))
            .unwrap_err();
        assert_eq!(par_err, serial_err, "jobs={jobs}");
    }
}

/// A case naming a signal absent from the design fails up front with
/// `UnknownCaseSignal` — before the base settle or any worker runs, so
/// no evaluation effort is spent and the error does not depend on which
/// worker would have claimed the bad case.
#[test]
fn unknown_case_signal_rejected_before_any_evaluation() {
    let mut cases = s1_cases();
    cases.push(Case::new().assign("NO SUCH SIGNAL", true));

    for jobs in [1, 3] {
        let mut v = fresh_s1_verifier();
        let err = v
            .run(&RunOptions::new().cases(cases.clone()).jobs(jobs))
            .unwrap_err();
        assert_eq!(
            err,
            VerifyError::UnknownCaseSignal {
                name: "NO SUCH SIGNAL".to_owned()
            }
        );
        assert_eq!(
            v.total_evaluations(),
            0,
            "name resolution must precede evaluation"
        );
    }
}
