//! Bounded growth of the process-global [`WaveStore`] under real engine
//! load: across a 50-seed generated-design sweep the store grows only
//! with the *distinct*-waveform population — re-verifying an identical
//! design interns nothing new, and deduplication absorbs the bulk of the
//! intern traffic. (One test function on purpose: the global store is
//! process-wide state, so concurrent test functions would race its
//! counters.)

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_rng::Rng;
use scald_verifier::{RunOptions, Verifier};
use scald_wave::WaveStore;

#[test]
fn global_store_growth_is_bounded_across_a_seeded_sweep() {
    let store = WaveStore::global();
    let mut rng = Rng::seed_from_u64(0x57035);
    let mut designs = 0usize;
    while designs < 50 {
        designs += 1;
        let (netlist, _) = s1_like_netlist(S1Options {
            chips: rng.range_usize(4, 10),
            seed: rng.next_u64(),
        });

        let mut cold = Verifier::new(netlist.clone());
        cold.run(&RunOptions::new()).unwrap();
        let after_cold = store.len();

        // The bound: a byte-identical design produces byte-identical
        // waveforms, every one of which is already canonical — the
        // second verification adds zero entries.
        let mut replay = Verifier::new(netlist);
        replay.run(&RunOptions::new()).unwrap();
        assert_eq!(
            store.len(),
            after_cold,
            "design {designs}: re-verifying an identical design grew the store"
        );
    }

    // Across the whole sweep, dedup must have absorbed at least the
    // entire replay half of the traffic: unique entries stay below half
    // the interns, and hits account for the rest exactly.
    let stats = store.stats();
    assert!(stats.hits > 0);
    assert!(
        stats.unique as u64 <= stats.interns / 2,
        "store grew linearly with intern traffic: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.unique as u64,
        stats.interns,
        "every intern either hit a canonical copy or created one"
    );
}
