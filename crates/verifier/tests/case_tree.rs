//! Property tests for the case-tree engine: tree-factored sweeps must be
//! observably indistinguishable from the naive independent-case path.
//!
//! The engine settles shared assignment prefixes once per trie node and
//! fans only the leaf suffixes across workers, so effort counters differ —
//! but everything a user can observe (violations, waveforms, storage
//! records, the installed final state, the report JSON) must be
//! byte-identical for every strategy and every worker count. These tests
//! pin that down over seeded random sweeps, and check the error path: a
//! failure inside a shared prefix takes down the whole run cleanly.

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, PrimKind};
use scald_rng::Rng;
use scald_verifier::{
    Case, CaseSet, CaseStrategy, MemoStats, RunOptions, Verifier, VerifierBuilder, VerifyError,
};
use scald_wave::{DelayCorner, DelayRange};

/// The S-1-like generator always emits 24 control signals named
/// `CTL {i}` regardless of chip count; sweeps are built over those.
fn ctl(i: u64) -> String {
    format!("CTL {i}")
}

fn fresh_verifier(chips: usize) -> Verifier {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips,
        seed: 0x5ca1d,
    });
    Verifier::new(netlist)
}

/// A random sweep with deliberate prefix sharing: a few groups, each a
/// shared prefix of control-signal assignments fanned into several
/// suffix variants, with an occasional delay corner thrown in. Signals
/// are drawn in ascending-id order so the prefixes survive the engine's
/// canonical assignment sort.
fn random_sweep(rng: &mut Rng) -> CaseSet {
    let mut set = CaseSet::list([]);
    let groups = rng.range_u64(1, 3);
    for g in 0..groups {
        // Distinct ascending signal ids per group; groups overlap freely.
        let base = g * 8 + rng.below(3);
        let prefix: Vec<(String, bool)> = (0..rng.range_u64(1, 3))
            .map(|k| (ctl(base + k), rng.bool()))
            .collect();
        let corner = if rng.bool_with(0.25) {
            *rng.choose(&[DelayCorner::Min, DelayCorner::Typ, DelayCorner::Max])
        } else {
            DelayCorner::Worst
        };
        for _ in 0..rng.range_u64(2, 4) {
            let mut case = Case::new().corner(corner);
            for (name, v) in &prefix {
                case = case.assign(name.clone(), *v);
            }
            // Suffix over ids strictly above the prefix block.
            let suffix_len = rng.below(3);
            for k in 0..suffix_len {
                case = case.assign(ctl(base + 3 + k), rng.bool());
            }
            set.push(case);
        }
    }
    set
}

/// Runs one sweep and renders the effort-stripped report — the full
/// user-observable surface (violations, waves, storage, slack) minus
/// the scheduling-dependent counters.
fn stripped_report(v: &mut Verifier, set: &CaseSet, jobs: usize, strategy: CaseStrategy) -> String {
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(set.clone())
                .jobs(jobs)
                .strategy(strategy),
        )
        .unwrap();
    v.report("case-tree", &outcome.cases)
        .strip_effort()
        .to_json()
        .to_string()
}

/// The tentpole property: over 50 seeded random sweeps, the tree engine
/// at 1, 2 and 8 workers produces stripped reports byte-identical to the
/// naive independent path. Verifiers are reused (warm) across seeds so
/// the property also covers warm-start bases and corner-state resets.
#[test]
fn tree_matches_independent_over_50_seeds() {
    let mut naive = fresh_verifier(16);
    let mut tree: Vec<Verifier> = (0..3).map(|_| fresh_verifier(16)).collect();

    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let sweep = random_sweep(&mut rng);
        let baseline = stripped_report(&mut naive, &sweep, 1, CaseStrategy::Independent);
        for (v, jobs) in tree.iter_mut().zip([1usize, 2, 8]) {
            let got = stripped_report(v, &sweep, jobs, CaseStrategy::Tree);
            assert_eq!(
                got, baseline,
                "seed {seed}, jobs {jobs}: tree diverged from independent"
            );
        }
    }
}

/// Delay-corner sweeps are first-class case axes: a `cross_corners`
/// sweep (which forces a reseed-everything root per corner group) must
/// be byte-identical between strategies, cold, at several worker counts.
#[test]
fn corner_sweeps_match_between_strategies() {
    let sweep = CaseSet::exhaustive([ctl(0), ctl(1)]).cross_corners(DelayCorner::ALL);
    let baseline = stripped_report(
        &mut fresh_verifier(12),
        &sweep,
        1,
        CaseStrategy::Independent,
    );
    for jobs in [1usize, 4] {
        let got = stripped_report(&mut fresh_verifier(12), &sweep, jobs, CaseStrategy::Tree);
        assert_eq!(got, baseline, "jobs {jobs}");
        let auto = stripped_report(&mut fresh_verifier(12), &sweep, jobs, CaseStrategy::Auto);
        assert_eq!(auto, baseline, "auto, jobs {jobs}");
    }
}

/// The point of the trie: shared prefixes settle once. On an exhaustive
/// sweep the tree run must report prefix nodes, and the total settle
/// effort (prefix + per-case) must come in strictly below the naive
/// path's per-case total.
#[test]
fn tree_spends_less_settle_effort_on_shared_prefixes() {
    let sweep = CaseSet::exhaustive((0..5).map(ctl));

    let mut naive = fresh_verifier(16);
    let naive_out = naive
        .run(
            &RunOptions::new()
                .cases(sweep.clone())
                .strategy(CaseStrategy::Independent),
        )
        .unwrap();
    assert_eq!(naive_out.prefix.nodes, 0, "independent path has no trie");
    let naive_evals: u64 = naive_out.cases.iter().map(|c| c.evaluations).sum();

    let mut factored = fresh_verifier(16);
    let tree_out = factored
        .run(
            &RunOptions::new()
                .cases(sweep.clone())
                .strategy(CaseStrategy::Tree),
        )
        .unwrap();
    assert!(tree_out.prefix.nodes > 0, "exhaustive sweep must share");
    let tree_evals: u64 =
        tree_out.prefix.evaluations + tree_out.cases.iter().map(|c| c.evaluations).sum::<u64>();

    // Cold runs fold the base settle into case 1 on both paths; remove
    // it from both sides by comparing the per-case remainders only.
    assert!(
        tree_evals < naive_evals,
        "tree ({tree_evals} evals) must beat naive ({naive_evals} evals)"
    );

    // Auto picks the tree for this sweep: same outcome as explicit Tree.
    let mut auto = fresh_verifier(16);
    let auto_out = auto
        .run(&RunOptions::new().cases(sweep).strategy(CaseStrategy::Auto))
        .unwrap();
    assert_eq!(auto_out.prefix, tree_out.prefix);
    assert_eq!(
        format!("{:?}", auto_out.cases),
        format!("{:?}", tree_out.cases)
    );
}

/// Error path: an unknown signal inside a *shared prefix* fails the
/// whole run before any evaluation — not one leaf, and not after
/// settling half the trie.
#[test]
fn unknown_signal_in_shared_prefix_fails_whole_subtree() {
    let sweep = CaseSet::list([
        Case::new()
            .assign("NO SUCH SIGNAL", true)
            .assign(ctl(0), false),
        Case::new()
            .assign("NO SUCH SIGNAL", true)
            .assign(ctl(0), true),
    ]);
    for strategy in [CaseStrategy::Tree, CaseStrategy::Auto] {
        let mut v = fresh_verifier(8);
        let err = v
            .run(&RunOptions::new().cases(sweep.clone()).strategy(strategy))
            .unwrap_err();
        assert_eq!(
            err,
            VerifyError::UnknownCaseSignal {
                name: "NO SUCH SIGNAL".to_owned()
            },
            "{strategy:?}"
        );
        assert_eq!(
            v.total_evaluations(),
            0,
            "{strategy:?}: resolution must precede all settling"
        );
    }
}

/// The memoization ledger must balance: every leaf examines the same
/// unit universe under both strategies (evaluated + inherited under the
/// tree equals evaluated under the naive path, for checkers and for
/// storage), the tree actually inherits most of it, and the counters
/// are deterministic totals — identical for every worker count.
#[test]
fn memo_counters_account_for_every_checker_unit() {
    let sweep = CaseSet::exhaustive((0..5).map(ctl));

    let mut naive = fresh_verifier(16);
    let naive_out = naive
        .run(
            &RunOptions::new()
                .cases(sweep.clone())
                .strategy(CaseStrategy::Independent),
        )
        .unwrap();
    assert_eq!(naive_out.memo.node_passes, 0, "no nodes on the naive path");
    assert_eq!(naive_out.memo.leaf_check_hits, 0);
    assert_eq!(naive_out.memo.leaf_storage_hits, 0);
    let check_units = naive_out.memo.leaf_check_evals;
    let storage_units = naive_out.memo.leaf_storage_evals;
    assert!(check_units > 0 && storage_units > 0);

    let mut reference: Option<MemoStats> = None;
    for jobs in [1usize, 2, 8] {
        let mut v = fresh_verifier(16);
        let out = v
            .run(
                &RunOptions::new()
                    .cases(sweep.clone())
                    .jobs(jobs)
                    .strategy(CaseStrategy::Tree),
            )
            .unwrap();
        let memo = out.memo;
        assert_eq!(
            memo.leaf_check_evals + memo.leaf_check_hits,
            check_units,
            "jobs {jobs}: every leaf checks the same checker-unit universe"
        );
        assert_eq!(
            memo.leaf_storage_evals + memo.leaf_storage_hits,
            storage_units,
            "jobs {jobs}: every leaf accounts the same signal universe"
        );
        assert!(
            memo.leaf_check_hits > memo.leaf_check_evals,
            "jobs {jobs}: shared prefixes must carry most checker work"
        );
        assert!(memo.node_passes > 0 && memo.releases > 0);
        match &reference {
            None => reference = Some(memo),
            Some(first) => assert_eq!(
                memo, *first,
                "jobs {jobs}: memo counters are deterministic totals"
            ),
        }
    }
}

/// A design whose *base* settles in one evaluation per primitive
/// (every input merely assumed-stable, so nothing propagates), but
/// where asserting `GATE` cascades an inverter chain one wave per
/// stage, re-evaluating the wide collector gate on every wave — the
/// settle costs ~2×`depth` evaluations, roughly double the base. A
/// budget between the two trips *only* the case-tree's `GATE = 1`
/// prefix-node settle. `SEL` is an unrelated input giving two such
/// cases distinct suffixes, which forces `GATE` into a shared node.
fn triangle_cone_netlist(depth: u64) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    // Creation order fixes signal ids: GATE below SEL, so the canonical
    // assignment sort puts GATE first and the two cases share it.
    let gate = b.signal("GATE").unwrap();
    let sel = b.signal("SEL").unwrap();
    let selbar = b.signal("SELBAR").unwrap();
    b.not("SELINV", DelayRange::ZERO, w(sel), selbar);
    let mut taps = vec![w(gate)];
    let mut prev = gate;
    for i in 0..depth {
        let out = b.signal(&format!("STAGE {i}")).unwrap();
        b.not(
            format!("BUF {i}"),
            DelayRange::from_ns(0.002, 0.002),
            w(prev),
            out,
        );
        taps.push(w(out));
        prev = out;
    }
    let wide = b.signal("WIDE").unwrap();
    b.gate("COLLECT", PrimKind::And, DelayRange::ZERO, taps, wide);
    b.finish().unwrap()
}

/// Error path of the dependency-release scheduler: when a shared prefix
/// node's settle fails (here: oscillation budget), every leaf under it
/// fails, the run returns the error, and the worker pool drains — no
/// deadlock — identically at 1, 2 and 8 workers.
#[test]
fn failing_prefix_node_fails_its_subtree_without_deadlocking() {
    // Base ≈ 42 evaluations (one per prim), the GATE=1 cone ≈ 80: a
    // budget of 60 settles the base and trips the shared prefix node.
    let netlist = triangle_cone_netlist(40);
    let sweep = CaseSet::list([
        Case::new().assign("GATE", true).assign("SEL", false),
        Case::new().assign("GATE", true).assign("SEL", true),
    ]);

    let mut reference: Option<VerifyError> = None;
    for jobs in [1usize, 2, 8] {
        let mut v = VerifierBuilder::new(netlist.clone())
            .oscillation_budget(60)
            .build();
        let err = v
            .run(
                &RunOptions::new()
                    .cases(sweep.clone())
                    .jobs(jobs)
                    .strategy(CaseStrategy::Tree),
            )
            .unwrap_err();
        assert!(
            matches!(err, VerifyError::Oscillation { .. }),
            "jobs {jobs}: expected the prefix settle to trip the budget, got {err:?}"
        );
        match &reference {
            None => reference = Some(err),
            Some(first) => assert_eq!(err, *first, "jobs {jobs}: error differs"),
        }
    }

    // The naive path fails the same sweep too (each case independently).
    let mut naive = VerifierBuilder::new(netlist).oscillation_budget(60).build();
    let err = naive
        .run(
            &RunOptions::new()
                .cases(sweep)
                .strategy(CaseStrategy::Independent),
        )
        .unwrap_err();
    assert!(matches!(err, VerifyError::Oscillation { .. }));
}

/// `RunOutcome::try_sole` is the non-panicking accessor: `Ok` for a
/// single-case run, a `MultiCaseError` naming the case count otherwise.
#[test]
fn try_sole_rejects_multi_case_runs() {
    let mut v = fresh_verifier(8);
    let single = v.run(&RunOptions::new()).unwrap();
    assert!(single.try_sole().is_ok());

    let multi = v
        .run(&RunOptions::new().cases(CaseSet::exhaustive([ctl(0)])))
        .unwrap();
    let err = multi.try_sole().unwrap_err();
    assert_eq!(err.cases, 2);
    assert!(err.to_string().contains("2 cases"));
}
