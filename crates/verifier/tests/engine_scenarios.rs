//! End-to-end engine scenarios drawn from the thesis' figures:
//! register clocking, the gated-clock hazard of Fig 1-5, the case-analysis
//! circuit of Fig 2-6, evaluation directives, latches and assertions.

use scald_logic::Value;
use scald_netlist::{Config, Conn, NetlistBuilder};
use scald_verifier::{Case, CaseSet, RunOptions, Verifier, VerifyError, ViolationKind};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn builder() -> NetlistBuilder {
    NetlistBuilder::new(Config::s1_example())
}

#[test]
fn register_output_timing_follows_clock_edge() {
    let mut b = builder();
    // Clock high units 2-3 (12.5..18.75 ns), zero skew for exactness.
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 32).unwrap();
    let q = b.signal_vec("Q", 32).unwrap();
    // Zero wire delay for a precise check.
    b.reg(
        "R",
        DelayRange::from_ns(1.5, 4.5),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean(), "{r}");
    let qw = v.resolved(v.netlist().signal_by_name("Q").unwrap());
    // Edge at 12.5; output changing over [12.5+1.5, 12.5+4.5) = [14, 17).
    assert_eq!(qw.value_at(ns(13.9)), Value::Stable);
    assert_eq!(qw.value_at(ns(14.0)), Value::Change);
    assert_eq!(qw.value_at(ns(16.9)), Value::Change);
    assert_eq!(qw.value_at(ns(17.0)), Value::Stable);
    assert_eq!(qw.value_at(ns(40.0)), Value::Stable);
}

#[test]
fn register_latches_constant_data_value() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let q = b.signal("Q").unwrap();
    b.constant("K1", Value::One, one);
    b.reg(
        "R",
        DelayRange::from_ns(1.0, 1.0),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(one).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let qw = v.resolved(v.netlist().signal_by_name("Q").unwrap());
    // After the change window the output is the latched 1, not just S.
    assert_eq!(qw.value_at(ns(30.0)), Value::One);
}

#[test]
fn setup_violation_detected_with_margin() {
    let mut b = builder();
    // Clock rises at unit 2 = 12.5 ns (zero skew); data stable 2-6 only:
    // it goes stable exactly when the clock rises.
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S2-6", 16).unwrap();
    let q = b.signal_vec("Q", 16).unwrap();
    b.reg(
        "R",
        DelayRange::from_ns(1.5, 4.5),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        q,
    );
    b.setup_hold(
        "R CHK",
        ns(2.5),
        ns(1.5),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let setups = r.of_kind(ViolationKind::Setup);
    assert_eq!(setups.len(), 1, "{r}");
    // Data stable exactly at the edge: missed by the full 2.5 ns, the
    // shape of the first error in Fig 3-11.
    assert_eq!(setups[0].missed_by, Some(ns(2.5)));
}

#[test]
fn wire_delay_defaults_push_data_late() {
    let mut b = builder();
    // Same circuit but with the default 0.0/2.0 ns wire delays: the data
    // arrives up to 2 ns later at the pin, the clock too; the check sees
    // skewed windows.
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S1-6", 16).unwrap();
    let q = b.signal_vec("Q", 16).unwrap();
    b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
    b.setup_hold("R CHK", ns(2.5), ns(1.5), d, clk);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    // Data stable at unit 1 = 6.25 ns nominal, but up to +2 wire = 8.25.
    // Clock edge window 12.5..14.5 (its own wire spread). Setup available
    // = 12.5 - 8.25 = 4.25 >= 2.5: clean.
    assert!(r.is_clean(), "{r}");
}

/// Fig 1-5: a too-late enable gates a clock; the `&A` check reports the
/// control hazard, and a MIN PULSE WIDTH checker flags the runt pulse.
#[test]
fn gated_clock_hazard_fig_1_5() {
    let mut b = builder();
    // CLOCK high 20..30 ns (units 3.2-4.8), no skew.
    let clock = b.signal("CLOCK .P3.2-4.8 (0,0)").unwrap();
    // DISABLE high 20..30; ENABLE = NOT(DISABLE) with up to 5 ns delay, so
    // ENABLE is still high for up to 5 ns after the clock rises.
    let disable = b.signal("DISABLE .P3.2-4.8 (0,0)").unwrap();
    let enable = b.signal("ENABLE").unwrap();
    let regck = b.signal("REG CLOCK").unwrap();
    b.not(
        "EN GATE",
        DelayRange::from_ns(0.0, 5.0),
        Conn::new(disable).with_wire_delay(DelayRange::ZERO),
        enable,
    );
    b.and2(
        "CK GATE",
        DelayRange::ZERO,
        Conn::new(clock)
            .with_directive("A")
            .with_wire_delay(DelayRange::ZERO),
        Conn::new(enable).with_wire_delay(DelayRange::ZERO),
        regck,
    );
    b.min_pulse_width(
        "REG CK WIDTH",
        ns(4.0),
        ns(0.0),
        Conn::new(regck).with_wire_delay(DelayRange::ZERO),
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let hazards = r.of_kind(ViolationKind::Hazard);
    assert_eq!(hazards.len(), 1, "{r}");
    assert!(hazards[0].observed.iter().any(|l| l.contains("ENABLE")));
}

/// The same circuit *without* the `&A` directive: the worst-case AND
/// output carries a potential 5 ns runt pulse, caught by the width check.
#[test]
fn gated_clock_runt_pulse_without_directive() {
    let mut b = builder();
    let clock = b.signal("CLOCK .P3.2-4.8 (0,0)").unwrap();
    let disable = b.signal("DISABLE .P3.2-4.8 (0,0)").unwrap();
    let enable = b.signal("ENABLE").unwrap();
    let regck = b.signal("REG CLOCK").unwrap();
    b.not(
        "EN GATE",
        DelayRange::from_ns(0.0, 5.0),
        Conn::new(disable).with_wire_delay(DelayRange::ZERO),
        enable,
    );
    b.and2(
        "CK GATE",
        DelayRange::ZERO,
        Conn::new(clock).with_wire_delay(DelayRange::ZERO),
        Conn::new(enable).with_wire_delay(DelayRange::ZERO),
        regck,
    );
    b.min_pulse_width(
        "REG CK WIDTH",
        ns(4.0),
        ns(0.0),
        Conn::new(regck).with_wire_delay(DelayRange::ZERO),
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let widths = r.of_kind(ViolationKind::MinPulseHigh);
    assert_eq!(widths.len(), 1, "{r}");
    assert!(
        widths[0].constraint.contains("POTENTIAL SPURIOUS PULSE"),
        "{}",
        widths[0].constraint
    );
}

/// Builds the Fig 2-6 circuit: two multiplexers whose selects are
/// complementary, with 10/20 ns paths, so the real worst path is 30 ns —
/// but value-independent analysis sees 40 ns.
fn fig_2_6_circuit() -> Verifier {
    let mut b = builder();
    let input = b.signal("INPUT .S0-4").unwrap();
    let ctrl = b.signal("CONTROL SIGNAL .S0-8").unwrap();
    let d10 = b.signal("D10").unwrap();
    let d20 = b.signal("D20").unwrap();
    let m1 = b.signal("M1").unwrap();
    let m1d10 = b.signal("M1 D10").unwrap();
    let m1d20 = b.signal("M1 D20").unwrap();
    let output = b.signal("OUTPUT").unwrap();
    let z = DelayRange::ZERO;
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.delay("P10", DelayRange::from_ns(10.0, 10.0), w(input), d10);
    b.delay("P20", DelayRange::from_ns(20.0, 20.0), w(input), d20);
    b.mux2("MUX1", z, w(ctrl), w(d10), w(d20), m1);
    b.delay("Q10", DelayRange::from_ns(10.0, 10.0), w(m1), m1d10);
    b.delay("Q20", DelayRange::from_ns(20.0, 20.0), w(m1), m1d20);
    // Complementary select: when CONTROL = 0, MUX1 took the 10 ns path and
    // MUX2 must take the 20 ns one.
    b.mux2("MUX2", z, w(ctrl).inverted(), w(m1d10), w(m1d20), output);
    Verifier::new(b.finish().unwrap())
}

#[test]
fn case_analysis_fig_2_6_recovers_30ns_path() {
    // Without case analysis: CONTROL is S, both muxes join both paths,
    // and the output looks changing for the 40 ns worst case.
    let mut v = fig_2_6_circuit();
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean());
    let out = v.netlist().signal_by_name("OUTPUT").unwrap();
    // INPUT changes 25..50; via the phantom 40 ns path the output could
    // still be changing at 35 ns (25+10 .. 50+40 wraps to 35..40).
    assert!(
        v.resolved(out).value_at(ns(36.0)).is_transitioning(),
        "no-case analysis should see the pessimistic 40 ns path: {}",
        v.resolved(out)
    );

    // With the two cases of §2.7.1 the path is 30 ns in both, so the
    // output is stable at 36 ns (changing only 35..(25+30)=5).
    let mut v = fig_2_6_circuit();
    let cases = [
        Case::new().assign("CONTROL SIGNAL", false),
        Case::new().assign("CONTROL SIGNAL", true),
    ];
    let results = v
        .run(&RunOptions::new().cases(CaseSet::list(cases.iter().cloned())))
        .unwrap()
        .cases;
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(r.is_clean(), "{r}");
        let w = v.resolved(out);
        // Verified per case inside the loop isn't possible here, so check
        // after the last case (CONTROL = 1: 20 + 10 ns path).
        let _ = r;
        assert!(
            !w.value_at(ns(36.0)).is_transitioning() || r.name.contains("case 1"),
            "case analysis should recover the 30 ns path: {w}"
        );
    }
    // Later cases are incremental: far fewer evaluations than the first.
    assert!(results[1].evaluations <= results[0].evaluations);
}

#[test]
fn case_analysis_unknown_signal_errors() {
    let mut v = fig_2_6_circuit();
    let err = v
        .run(&RunOptions::new().case(Case::new().assign("NO SUCH", true)))
        .unwrap_err();
    assert!(matches!(err, VerifyError::UnknownCaseSignal { .. }));
}

#[test]
fn z_directive_dereferences_clock_to_gate_output() {
    // A clock ANDed with a constant one through a slow gate: with &Z the
    // asserted clock timing refers to the gate output, so the output
    // equals the asserted waveform exactly.
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let gated = b.signal("GATED CK").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "CK BUF",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_directive("Z"),
        Conn::new(one).with_wire_delay(DelayRange::ZERO),
        gated,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let g = v.netlist().signal_by_name("GATED CK").unwrap();
    let w = v.resolved(g);
    // Rising edge exactly at 12.5 ns — no wire, no gate delay.
    assert_eq!(w.value_at(ns(12.4)), Value::Zero);
    assert_eq!(w.value_at(ns(12.5)), Value::One);
    assert_eq!(w.value_at(ns(18.74)), Value::One);
    assert_eq!(w.value_at(ns(18.75)), Value::Zero);
}

#[test]
fn without_z_directive_gate_delay_applies() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let one = b.signal("ONE").unwrap();
    let gated = b.signal("GATED CK").unwrap();
    b.constant("K1", Value::One, one);
    b.and2(
        "CK BUF",
        DelayRange::from_ns(2.0, 4.0),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(one).with_wire_delay(DelayRange::ZERO),
        gated,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let g = v.netlist().signal_by_name("GATED CK").unwrap();
    let w = v.resolved(g);
    // Shifted by 2 ns minimum, with a 2 ns rise window from the spread.
    assert_eq!(w.value_at(ns(14.4)), Value::Zero);
    assert_eq!(w.value_at(ns(14.5)), Value::Rise);
    assert_eq!(w.value_at(ns(16.5)), Value::One);
}

#[test]
fn latch_transparent_then_holds() {
    let mut b = builder();
    let en = b.signal("EN .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.latch(
        "L",
        DelayRange::from_ns(1.0, 1.0),
        Conn::new(en).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean(), "{r}");
    let qw = v.resolved(v.netlist().signal_by_name("Q").unwrap());
    // Data is stable while the latch is open (13.5..19.75 after delay) and
    // the held value is stable thereafter.
    assert!(qw.value_at(ns(15.0)).is_quiescent());
    assert!(qw.value_at(ns(30.0)).is_quiescent());
}

#[test]
fn latch_passes_changing_data_while_open() {
    let mut b = builder();
    // Data changes during the transparent phase: units 2-3 are inside the
    // changing region of .S4-8 (changing 0..25 ns... stable 25..50).
    let en = b.signal("EN .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S4-8", 8).unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.latch(
        "L",
        DelayRange::from_ns(1.0, 1.0),
        Conn::new(en).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let qw = v.resolved(v.netlist().signal_by_name("Q").unwrap());
    // While open (enable high 12.5..18.75 + 1 delay) the changing data
    // shows through.
    assert!(qw.value_at(ns(15.0)).is_transitioning(), "{qw}");
}

#[test]
fn register_set_reset_overrides() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let set = b.signal("SET").unwrap();
    let rst = b.signal("RST").unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.constant("KS", Value::One, set);
    b.constant("KR", Value::Zero, rst);
    b.reg_sr(
        "R",
        DelayRange::from_ns(1.0, 2.0),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        Conn::new(set).with_wire_delay(DelayRange::ZERO),
        Conn::new(rst).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let qw = v.resolved(v.netlist().signal_by_name("Q").unwrap());
    // SET = 1, RESET = 0: output forced to one for the whole cycle.
    assert!(qw.is_constant());
    assert_eq!(qw.value_at(ns(0.0)), Value::One);
}

#[test]
fn stable_assertion_on_generated_signal_checked() {
    let mut b = builder();
    // An adder (CHG) output asserted stable 0-4, but its input only goes
    // stable at unit 4 — the assertion is violated.
    let input = b.signal("IN .S4-8").unwrap();
    let sum = b.signal("SUM .S0-4").unwrap();
    b.chg(
        "ADDER",
        DelayRange::from_ns(3.0, 6.0),
        [Conn::new(input).with_wire_delay(DelayRange::ZERO)],
        sum,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let vio = r.of_kind(ViolationKind::AssertionViolated);
    assert_eq!(vio.len(), 1, "{r}");
    assert!(vio[0].source.contains("SUM"));
}

#[test]
fn stable_assertion_satisfied_is_clean() {
    let mut b = builder();
    // Input stable 0-6; adder adds at most 6 ns + 2 wire: output stable
    // well within its asserted 1.5-6 window... choose assertion 2-6.
    let input = b.signal("IN .S0-6").unwrap();
    let sum = b.signal("SUM .S2-6").unwrap();
    b.chg(
        "ADDER",
        DelayRange::from_ns(3.0, 6.0),
        [Conn::new(input).with_wire_delay(DelayRange::ZERO)],
        sum,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean(), "{r}");
}

#[test]
fn undriven_unasserted_signals_assumed_stable_and_crossreferenced() {
    let mut b = builder();
    let mystery = b.signal("NOT YET DESIGNED").unwrap();
    let out = b.signal("OUT").unwrap();
    b.buf("B", DelayRange::from_ns(1.0, 2.0), mystery, out);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean());
    assert_eq!(v.assumed_stable_signals().len(), 1);
    assert!(v.xref_listing().contains("NOT YET DESIGNED"));
    let ow = v.resolved(v.netlist().signal_by_name("OUT").unwrap());
    assert!(ow.is_constant());
    assert_eq!(ow.value_at(ns(0.0)), Value::Stable);
}

#[test]
fn oscillating_loop_is_detected_not_hung() {
    let mut b = builder();
    // out = MUX(clock01, NOT(out delayed 5), 1): while the clock is low
    // the loop keeps inverting itself — a genuine oscillation.
    let clk = b.signal("CK .P0-4 (0,0)").unwrap();
    let fb = b.signal("FB").unwrap();
    let out = b.signal("OUT").unwrap();
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.not("INV", DelayRange::from_ns(5.0, 5.0), w(out), fb);
    let one = b.signal("ONE").unwrap();
    b.constant("K1", Value::One, one);
    b.mux2("M", DelayRange::ZERO, w(clk), w(fb), w(one), out);
    let mut v = Verifier::new(b.finish().unwrap());
    match v.run(&RunOptions::new()) {
        Err(VerifyError::Oscillation { evaluations, .. }) => {
            assert!(evaluations > 0);
        }
        Ok(r) => {
            // If the worst-case algebra absorbed the loop into C/U values,
            // settling is also acceptable — but it must terminate.
            let _ = r;
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn summary_listing_shows_signal_values() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let listing = v.summary_listing();
    assert!(listing.contains("CK .P2-3"));
    assert!(listing.contains("Q"));
    // Each line carries a waveform rendering.
    assert!(listing
        .lines()
        .all(|l| l.trim().is_empty() || l.contains(char::is_numeric)));
}

#[test]
fn storage_report_totals_are_consistent() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let q = b.signal_vec("Q", 8).unwrap();
    b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let report = v.storage_report();
    let sum: usize = report.rows().iter().map(|(_, b, _)| b).sum();
    assert_eq!(sum, report.total());
    assert!(report.value_records_per_signal() >= 1.0);
    let shown = report.to_string();
    assert!(shown.contains("CIRCUIT DESCRIPTION"));
    assert!(shown.contains("CALL LIST ARRAY"));
}

#[test]
fn events_are_counted() {
    let mut b = builder();
    let a = b.signal("A .S0-4").unwrap();
    let q1 = b.signal("Q1").unwrap();
    let q2 = b.signal("Q2").unwrap();
    b.buf("B1", DelayRange::from_ns(1.0, 2.0), a, q1);
    b.buf("B2", DelayRange::from_ns(1.0, 2.0), q1, q2);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    // Both buffers produce new values at least once.
    assert!(r.events >= 2, "{}", r.events);
    assert!(r.evaluations >= r.events);
    assert_eq!(v.total_events(), r.events);
}

#[test]
fn chg_absorbs_values_but_tracks_changing() {
    let mut b = builder();
    let a = b.signal("A .S0-4").unwrap();
    let clkish = b.signal("CKX .P2-3 (0,0)").unwrap();
    let out = b.signal("PARITY").unwrap();
    let w = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.chg("PAR", DelayRange::from_ns(1.5, 3.0), [w(a), w(clkish)], out);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let ow = v.resolved(v.netlist().signal_by_name("PARITY").unwrap());
    // The clock's edges at 12.5/18.75 appear as changing windows
    // (1.5..3.0 after each edge), the 0/1 levels are absorbed into S.
    assert_eq!(ow.value_at(ns(10.0)), Value::Stable);
    assert!(ow.value_at(ns(15.0)).is_transitioning());
    assert_eq!(ow.value_at(ns(17.0)), Value::Stable);
    assert!(ow.value_at(ns(21.0)).is_transitioning());
}

#[test]
fn inverted_connection_complement() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let q = b.signal("NCK").unwrap();
    b.buf(
        "B",
        DelayRange::ZERO,
        Conn::new(clk).inverted().with_wire_delay(DelayRange::ZERO),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(v.netlist().signal_by_name("NCK").unwrap());
    assert_eq!(w.value_at(ns(15.0)), Value::Zero); // clock is high here
    assert_eq!(w.value_at(ns(30.0)), Value::One);
}

/// Fig 1-3: the cross-coupled-NOR set-reset latch — an *asynchronous*
/// circuit outside the approach's scope (§1.2.4). The engine must
/// terminate on its feedback loop, either settling conservatively or
/// reporting oscillation; it must never hang.
#[test]
fn sr_latch_feedback_terminates() {
    let netlist = scald_gen::figures::sr_latch();
    let mut v = Verifier::new(netlist);
    match v.run(&RunOptions::new()) {
        Ok(r) => {
            // Settled: outputs carry conservative (U/S/C) values.
            let q = v.netlist().signal_by_name("B").unwrap();
            let w = v.resolved(q);
            assert!(
                w.transitions().iter().all(|&(_, val)| !val.is_constant()),
                "an unverifiable async latch must not claim a known level: {w}"
            );
            let _ = r;
        }
        Err(VerifyError::Oscillation { .. }) => {} // also acceptable
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Slack reporting: passing checks show positive margins, failing ones
/// negative, and ordering puts the tightest check first.
#[test]
fn slack_report_margins() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let comfortable = b.signal_vec("EARLY .S0-6", 8).unwrap();
    let tight = b.signal_vec("TIGHT .S1.9-6", 8).unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.setup_hold("EARLY CHK", ns(2.5), ns(1.5), z(comfortable), z(clk));
    b.setup_hold("TIGHT CHK", ns(2.5), ns(1.5), z(tight), z(clk));
    b.min_pulse_width("CK WIDTH", ns(4.0), ns(0.0), z(clk));
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let slack = v.slack_report();
    assert_eq!(slack.len(), 3);
    // TIGHT goes stable at 11.875 ns; the edge is at 12.5: 0.625 avail vs
    // 2.5 required -> slack -1.875 (and it sorts first).
    assert_eq!(slack[0].checker, "TIGHT CHK");
    assert_eq!(slack[0].setup_slack, Some(ns(0.625) - ns(2.5)));
    // EARLY: stable from 0 wrapping from 37.5 prev cycle: avail = 12.5 -
    // (-12.5)... measured from the wrap: 25 ns available -> +22.5 slack.
    let early = slack.iter().find(|m| m.checker == "EARLY CHK").unwrap();
    assert!(early.setup_slack.unwrap() > Time::ZERO);
    assert!(early.hold_slack.unwrap() > Time::ZERO);
    // The clock is high 6.25 ns vs 4.0 required: +2.25 pulse slack.
    let width = slack.iter().find(|m| m.checker == "CK WIDTH").unwrap();
    assert_eq!(width.pulse_slack, Some(ns(2.25)));
}

/// Engine reuse: after a plain run, running cases re-evaluates only the
/// overridden cones — the §3.3.2 workflow of checking case after case on
/// the settled design.
#[test]
fn engine_reuse_is_incremental() {
    let mut b = builder();
    let input = b.signal("IN .S0-4").unwrap();
    let ctrl = b.signal("CTRL .S0-8").unwrap();
    let m = b.signal("M").unwrap();
    let far = b.signal("FAR").unwrap();
    let unrelated_in = b.signal("OTHER IN .S0-4").unwrap();
    let unrelated = b.signal("OTHER").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.mux2(
        "M1",
        DelayRange::from_ns(1.0, 2.0),
        z(ctrl),
        z(input),
        z(input),
        m,
    );
    b.buf("B1", DelayRange::from_ns(1.0, 2.0), z(m), far);
    b.buf(
        "B2",
        DelayRange::from_ns(1.0, 2.0),
        z(unrelated_in),
        unrelated,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    let first = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(first.evaluations >= 3);

    // Switching CTRL to a constant touches only the mux cone (M1, B1) —
    // never B2.
    let results = v
        .run(&RunOptions::new().case(Case::new().assign("CTRL", true)))
        .unwrap()
        .cases;
    assert!(
        results[0].evaluations <= 2,
        "expected only the mux cone to re-evaluate: {}",
        results[0].evaluations
    );
}

/// `check_now` re-examines constraints without re-evaluating.
#[test]
fn check_now_reflects_current_state() {
    let mut b = builder();
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal_vec("D .S2-6", 16).unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.setup_hold("CHK", ns(2.5), ns(1.5), z(d), z(clk));
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let again = v.check_now();
    assert_eq!(r.violations, again);
}

/// An undefined clock (no assertion, driven from an undefined loop)
/// yields one crisp diagnostic instead of an avalanche of set-up noise.
#[test]
fn undefined_clock_diagnostic() {
    let mut b = builder();
    // A clock driven from a feedback of itself through an XOR stays U.
    let fb = b.signal("CK FB").unwrap();
    let ck = b.signal("MYSTERY CLK").unwrap();
    let d = b.signal_vec("D .S0-6", 8).unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.gate(
        "XORLOOP",
        scald_netlist::PrimKind::Xor,
        DelayRange::from_ns(1.0, 1.0),
        [z(ck), z(ck)],
        fb,
    );
    b.buf("CKBUF", DelayRange::from_ns(1.0, 1.0), z(fb), ck);
    b.setup_hold("CHK", ns(2.5), ns(1.5), z(d), z(ck));
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    let undef = r.of_kind(ViolationKind::UndefinedClock);
    assert_eq!(undef.len(), 1, "{r}");
    assert!(undef[0].constraint.contains("MYSTERY CLK"));
    // And no noisy set-up/hold reports pile on top.
    assert!(r.of_kind(ViolationKind::Setup).is_empty());
    assert!(r.of_kind(ViolationKind::Hold).is_empty());
}

/// A driven signal with a stable assertion propagates its *computed*
/// timing downstream; the assertion is checked, not substituted (§2.5.2:
/// "the designer's initial timing assertion is checked against the timing
/// of the actual signal").
#[test]
fn driven_stable_assertion_checks_but_does_not_pin() {
    let mut b = builder();
    let input = b.signal("IN .S0-4").unwrap();
    // MID claims stability 0-8 (always) but is actually changing when IN
    // changes.
    let mid = b.signal("MID .S0-8").unwrap();
    let out = b.signal("OUT").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.buf("B1", DelayRange::from_ns(1.0, 2.0), z(input), mid);
    b.buf("B2", DelayRange::from_ns(1.0, 2.0), z(mid), out);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    // The false assertion is reported...
    assert_eq!(r.of_kind(ViolationKind::AssertionViolated).len(), 1, "{r}");
    // ...and OUT sees MID's real changing window (26..4 after two 1-2 ns
    // buffers over IN's changing 25..50), not the asserted always-stable.
    let w = v.resolved(out);
    assert!(w.value_at(ns(30.0)).is_transitioning(), "{w}");
    assert!(w.value_at(ns(10.0)).is_quiescent(), "{w}");
}

/// A *clock*-asserted driven signal is pinned to its asserted (de-skewed)
/// timing — the §2.6 clock-tuning semantics — and the xref notes it.
#[test]
fn driven_clock_assertion_pins_value() {
    let mut b = builder();
    let raw = b.signal("RAW CK .P2-3 (0,0)").unwrap();
    // GEN CK is generated through a slow buffer but asserted as an
    // adjusted clock: the asserted timing wins.
    let gen = b.signal("GEN CK .P2-3 (0,0)").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.buf("CK TREE", DelayRange::from_ns(3.0, 9.0), z(raw), gen);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(gen);
    // Pinned to the asserted 12.5..18.75 pulse, not shifted by 3..9 ns.
    assert_eq!(w.value_at(ns(12.5)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(18.75)), Value::Zero, "{w}");
    assert!(v.xref_listing().contains("GEN CK"));
}
