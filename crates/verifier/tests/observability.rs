//! The observability contract: trace sinks see exactly the work the
//! engine reports, violations carry fan-in provenance anchored at the
//! checked signal, the builder's knobs behave, and attaching a sink
//! never perturbs verification results.

use scald_gen::figures::{case_analysis_circuit, register_file_circuit};
use scald_trace::{CounterSink, JsonlSink, TimelineSink};
use scald_verifier::{
    Case, CaseSet, RunOptions, Verifier, VerifierBuilder, VerifyError, REPORT_SCHEMA,
};
use std::sync::Arc;

#[test]
fn counter_sink_totals_match_engine_counters() {
    let (netlist, _) = register_file_circuit();
    let sink = Arc::new(CounterSink::new());
    let mut v = VerifierBuilder::new(netlist).trace(sink.clone()).build();
    let result = v.run(&RunOptions::new()).expect("settles").into_sole();

    let snap = sink.snapshot();
    assert_eq!(snap.evaluations, result.evaluations);
    assert_eq!(snap.events, result.events);
    assert_eq!(snap.cases.len(), 1);
    assert_eq!(snap.cases[0].violations, result.violations.len());
    assert!(snap.cases[0].wall_nanos > 0);
    assert!(!snap.hottest_prims.is_empty());
    assert!(snap.run_wall_nanos > 0);
}

#[test]
fn violations_carry_provenance_anchored_at_checked_signal() {
    let (netlist, _) = register_file_circuit();
    let mut v = Verifier::new(netlist);
    let result = v.run(&RunOptions::new()).expect("settles").into_sole();
    assert!(!result.violations.is_empty());
    for violation in &result.violations {
        let p = violation
            .provenance
            .as_ref()
            .unwrap_or_else(|| panic!("violation without provenance: {violation}"));
        assert!(!p.hops.is_empty());
        assert_eq!(p.hops[0].depth, 0, "first hop must be the checked input");
        // The walk reaches past the anchor into its cone, and the anchor
        // itself was changing somewhere (that is why the check fired).
        assert!(p.hops.len() > 1, "cone should extend past the anchor");
        assert!(!p.hops[0].arrival.is_empty());
    }
}

#[test]
fn builder_oscillation_budget_cuts_runs_short() {
    let (netlist, _) = register_file_circuit();
    let mut v = VerifierBuilder::new(netlist).oscillation_budget(3).build();
    match v.run(&RunOptions::new()) {
        Err(VerifyError::Oscillation { evaluations, .. }) => {
            // The engine gives up on the first evaluation past the budget.
            assert_eq!(evaluations, 4, "budget not honored");
        }
        other => panic!("expected Oscillation, got {other:?}"),
    }
}

#[test]
fn tracing_does_not_change_results() {
    let (netlist, _) = case_analysis_circuit();
    let cases = [
        Case::new().assign("CONTROL SIGNAL", false),
        Case::new().assign("CONTROL SIGNAL", true),
    ];
    let mut bare = Verifier::new(netlist.clone());
    let baseline = format!(
        "{:?}",
        bare.run(&RunOptions::new().cases(CaseSet::list(cases.iter().cloned())))
            .expect("settles")
            .cases
    );

    let sink = Arc::new(CounterSink::new());
    let mut traced = VerifierBuilder::new(netlist).trace(sink.clone()).build();
    let traced_out = format!(
        "{:?}",
        traced
            .run(&RunOptions::new().cases(CaseSet::list(cases.iter().cloned())))
            .expect("settles")
            .cases
    );
    assert_eq!(traced_out, baseline, "tracing perturbed verification");
    assert!(sink.snapshot().evaluations > 0, "sink saw no work");
}

#[test]
fn jsonl_sink_streams_parseable_events() {
    let (netlist, _) = register_file_circuit();
    let sink = Arc::new(JsonlSink::new(Vec::new()));
    let mut v = VerifierBuilder::new(netlist).trace(sink.clone()).build();
    v.run(&RunOptions::new()).expect("settles");
    drop(v); // release the engine's Arc so the buffer can be reclaimed

    let sink = Arc::into_inner(sink).expect("engine dropped its handle");
    let body = String::from_utf8(sink.into_inner()).expect("utf-8 stream");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 3);
    for line in &lines {
        scald_trace::json::parse(line).expect("valid JSONL line");
    }
    assert!(lines[0].contains("run_start"));
    assert!(lines[lines.len() - 1].contains("run_end"));
}

#[test]
fn timeline_sink_records_queue_depth_profile() {
    let (netlist, _) = register_file_circuit();
    let sink = Arc::new(TimelineSink::new());
    let mut v = VerifierBuilder::new(netlist).trace(sink.clone()).build();
    v.run(&RunOptions::new()).expect("settles");
    let samples = sink.samples();
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|s| s.ordinal >= 1));
    let wave = sink.render_base_wave(32);
    let lines: Vec<&str> = wave.lines().collect();
    assert_eq!(lines.len(), 9, "8 profile rows + footer: {wave}");
    assert!(lines[..8].iter().all(|l| l.chars().count() <= 32));
    assert!(lines[8].contains("queue depth"), "{wave}");
    // The worklist drains to zero at the fixed point, so at least one
    // sample is a collapse-to-empty marker.
    assert!(samples.iter().any(|s| s.depth == 0));
}

#[test]
fn report_json_round_trips_through_own_parser() {
    let (netlist, _) = register_file_circuit();
    let mut v = Verifier::new(netlist);
    let results = vec![v.run(&RunOptions::new()).expect("settles").into_sole()];
    let report = v.report("register-file", &results);
    assert!(!report.is_clean());
    assert_eq!(report.total_violations(), results[0].violations.len());

    let doc = scald_trace::json::parse(&report.to_json()).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(scald_trace::json::Json::as_str),
        Some(REPORT_SCHEMA)
    );
    let engine = doc.get("engine").expect("engine stats");
    assert_eq!(
        engine
            .get("evaluations")
            .and_then(scald_trace::json::Json::as_u64),
        Some(v.total_evaluations())
    );
    // Text renderers stay consistent with the legacy listings.
    assert_eq!(report.summary_text(), v.summary_listing());
    assert_eq!(report.xref_text(), v.xref_listing());
    assert!(report.diagram_text(40).starts_with("time"));
}
