//! Wired-OR bus semantics: the F10145A data sheet's memory-expansion
//! idiom ("outputs can be wired-OR", Fig 3-1). Two RAM banks drive one
//! read bus; the bus value is the worst-case OR of the banks.

use scald_logic::Value;
use scald_netlist::{Config, Conn, NetlistBuilder, NetlistError, SignalId};
use scald_verifier::{RunOptions, Verifier};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

#[test]
fn unmarked_multi_driver_still_rejected() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A").unwrap();
    let q = b.signal("BUS").unwrap();
    b.buf("B1", DelayRange::ZERO, z(a), q);
    b.buf("B2", DelayRange::ZERO, z(a), q);
    let err = b.finish().unwrap_err();
    assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
}

#[test]
fn wired_or_joins_two_banks() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    // Two banks, each enabled in a different half of the cycle; a
    // disabled bank drives 0 (the ECL wired-OR idle level).
    let en_a = b.signal("EN A .P0-4 (0,0)").unwrap();
    let en_b = b.signal("EN B .P4-8 (0,0)").unwrap();
    let data_a = b.signal_vec("BANK A OUT .S0-8", 8).unwrap();
    let data_b = b.signal_vec("BANK B OUT .S0-8", 8).unwrap();
    let bus = b.signal_vec("READ BUS", 8).unwrap();
    b.mark_wired_or(bus);
    let zero = b.signal("GND").unwrap();
    b.constant("K0", Value::Zero, zero);
    b.mux2(
        "DRIVE A",
        DelayRange::from_ns(1.0, 2.0),
        z(en_a),
        z(zero),
        z(data_a),
        bus,
    );
    b.mux2(
        "DRIVE B",
        DelayRange::from_ns(1.0, 2.0),
        z(en_b),
        z(zero),
        z(data_b),
        bus,
    );
    let n = b.finish().unwrap();
    assert_eq!(n.drivers(bus).len(), 2);

    let mut v = Verifier::new(n);
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean(), "{r}");
    let w = v.resolved(bus);
    // Around mid-half-cycle instants the bus carries the enabled bank's
    // stable data (S OR 0 = S); around the 25 ns crossover both mux
    // outputs are switching within their 1..2 ns delay spread, so the bus
    // is changing there.
    assert_eq!(w.value_at(ns(12.0)), Value::Stable, "{w}");
    assert_eq!(w.value_at(ns(40.0)), Value::Stable, "{w}");
    assert!(w.value_at(ns(26.5)).is_transitioning(), "{w}");
}

#[test]
fn wired_or_dominated_by_asserted_one() {
    // One driver pins the bus high: 1 OR anything = 1, whatever the other
    // bank does.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let one = b.signal("VCC").unwrap();
    let noisy = b.signal("NOISY .S2-3").unwrap();
    let bus = b.signal("BUS").unwrap();
    b.mark_wired_or(bus);
    b.constant("K1", Value::One, one);
    b.buf("D1", DelayRange::ZERO, z(one), bus);
    b.buf("D2", DelayRange::from_ns(1.0, 3.0), z(noisy), bus);
    let n = b.finish().unwrap();
    let mut v = Verifier::new(n);
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(bus);
    assert!(w.is_constant(), "{w}");
    assert_eq!(w.value_at(Time::ZERO), Value::One);
}

#[test]
fn wired_or_checker_sees_joined_value() {
    // A setup checker on the bus observes the join, not one contribution.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P6-7 (0,0)").unwrap();
    let early = b.signal("EARLY .S2-8").unwrap();
    let late = b.signal("LATE .S5.7-8").unwrap();
    let bus = b.signal("BUS").unwrap();
    b.mark_wired_or(bus);
    b.buf("D1", DelayRange::ZERO, z(early), bus);
    b.buf("D2", DelayRange::ZERO, z(late), bus);
    b.setup_hold("BUS CHK", ns(2.5), ns(0.5), z(bus), z(clk));
    let n = b.finish().unwrap();
    let mut v = Verifier::new(n);
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    // LATE is changing until 35.6 ns; the 37.5 ns edge needs stability
    // from 35.0 -> the joined bus violates set-up by 0.6 ns.
    assert!(
        !r.is_clean(),
        "the late contribution must surface through the join: {r}"
    );
}
