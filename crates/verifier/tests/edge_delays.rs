//! Tests for the §4.2.2 extension: separate rising and falling delays.
//!
//! The thesis proposes handling nMOS-style asymmetric delays by applying
//! the matching delay to output edges of known polarity and the
//! conservative envelope otherwise.

use scald_logic::Value;
use scald_netlist::{Config, Conn, NetlistBuilder};
use scald_verifier::{RunOptions, Verifier};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: scald_netlist::SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

#[test]
fn buffer_applies_per_edge_delays() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    // A clean 0/1 pulse: high 10..30.
    let a = b.signal("A .P1.6-4.8 (0,0)").unwrap();
    let q = b.signal("Q").unwrap();
    // Rise delay 2 (exact), fall delay 6 (exact).
    b.buf_asym(
        "B",
        DelayRange::from_ns(2.0, 2.0),
        DelayRange::from_ns(6.0, 6.0),
        z(a),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Rising edge 10 -> 12; falling edge 30 -> 36. The pulse stretches by
    // the delay difference — the effect uniform delays cannot model.
    assert_eq!(w.value_at(ns(11.9)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(12.0)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(35.9)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(36.0)), Value::Zero, "{w}");
}

#[test]
fn inverter_swaps_which_delay_applies() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .P1.6-4.8 (0,0)").unwrap();
    let q = b.signal("Q").unwrap();
    b.not_asym(
        "N",
        DelayRange::from_ns(2.0, 2.0),
        DelayRange::from_ns(6.0, 6.0),
        z(a),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Input rises at 10 => OUTPUT FALLS: the fall delay (6) applies: Q is
    // 1 until 16, then 0. Input falls at 30 => output rises at 32.
    assert_eq!(w.value_at(ns(15.9)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(16.0)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(31.9)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(32.0)), Value::One, "{w}");
}

#[test]
fn delay_ranges_become_edge_windows() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .P1.6-4.8 (0,0)").unwrap();
    let q = b.signal("Q").unwrap();
    b.buf_asym(
        "B",
        DelayRange::from_ns(1.0, 3.0),
        DelayRange::from_ns(4.0, 8.0),
        z(a),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Rise window 11..13, fall window 34..38.
    assert_eq!(w.value_at(ns(10.9)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(12.0)), Value::Rise, "{w}");
    assert_eq!(w.value_at(ns(13.0)), Value::One, "{w}");
    assert_eq!(w.value_at(ns(35.0)), Value::Fall, "{w}");
    assert_eq!(w.value_at(ns(38.0)), Value::Zero, "{w}");
}

#[test]
fn unknown_polarity_uses_envelope() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    // A stable-asserted signal: transitions are S <-> C, polarity unknown.
    let a = b.signal("A .S1-5").unwrap();
    let q = b.signal("Q").unwrap();
    b.buf_asym(
        "B",
        DelayRange::from_ns(2.0, 2.0),
        DelayRange::from_ns(6.0, 6.0),
        z(a),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // A stable 6.25..31.25, changing elsewhere. The envelope is 2..6:
    // Q must be possibly-changing from 31.25+2 and until 6.25+6.
    assert!(w.value_at(ns(34.0)).is_transitioning(), "{w}");
    assert!(w.value_at(ns(12.0)).is_transitioning(), "{w}");
    assert!(w.value_at(ns(13.0)).is_quiescent(), "{w}");
    assert!(w.value_at(ns(30.0)).is_quiescent(), "{w}");
}

#[test]
fn narrow_pulse_collapse_is_conservative() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    // A 2 ns pulse through a buffer whose fall delay exceeds the rise
    // delay by more than the pulse width: edges reorder; output must not
    // claim a clean pulse.
    let a = b.signal("A .P1.6-1.92 (0,0)").unwrap(); // high 10..12
    let q = b.signal("Q").unwrap();
    b.buf_asym(
        "B",
        DelayRange::from_ns(6.0, 6.0),
        DelayRange::from_ns(1.0, 1.0),
        z(a),
        q,
    );
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Rise would land at 16, fall at 13: physically the pulse is swallowed
    // or a glitch. The conservative result may mark the region changing
    // but must never assert a guaranteed clean full-width high pulse.
    let guaranteed_high: Vec<_> = scald_wave::pulses(&w, true)
        .into_iter()
        .filter(|p| p.min_possible_width >= ns(2.0))
        .collect();
    assert!(
        guaranteed_high.is_empty(),
        "swallowed pulse must not come out guaranteed: {w}"
    );
}

#[test]
fn asymmetric_inverter_chain_tightens_vs_envelope() {
    // The §4.2.2 motivation: through TWO inverting levels the rise and
    // fall delays alternate, so a known-polarity edge accumulates
    // rise+fall — not 2×max as the envelope would give.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A .P1.6-4.8 (0,0)").unwrap();
    let m = b.signal("M").unwrap();
    let q = b.signal("Q").unwrap();
    let rise = DelayRange::from_ns(2.0, 2.0);
    let fall = DelayRange::from_ns(6.0, 6.0);
    b.not_asym("N1", rise, fall, z(a), m);
    b.not_asym("N2", rise, fall, z(m), q);
    let mut v = Verifier::new(b.finish().unwrap());
    v.run(&RunOptions::new()).unwrap();
    let w = v.resolved(q);
    // Input rises at 10: N1 falls at 16 (fall 6), N2 rises at 18 (rise 2):
    // total 8 ns = rise + fall, vs 12 ns for 2×max.
    assert_eq!(w.value_at(ns(17.9)), Value::Zero, "{w}");
    assert_eq!(w.value_at(ns(18.0)), Value::One, "{w}");
}
