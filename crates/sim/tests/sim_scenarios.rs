//! Behavioural tests for the min/max logic simulator baseline.

use scald_netlist::{Config, Conn, NetlistBuilder};
use scald_sim::{primary_inputs, simulate, SimValue, SimViolationKind, Stimulus};
use scald_wave::{DelayRange, Time};
use std::collections::HashMap;

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

#[test]
fn and_gate_concrete_values() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A").unwrap();
    let c = b.signal("B").unwrap();
    let q = b.signal("Q").unwrap();
    b.and2("G", DelayRange::from_ns(1.0, 2.0), a, c, q);
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    assert_eq!(inputs.len(), 2);

    for pattern in 0..4u64 {
        let stim = Stimulus::from_pattern(&inputs, 1, pattern);
        let r = simulate(&n, &stim);
        let expect = pattern & 0b01 != 0 && pattern & 0b10 != 0;
        assert_eq!(
            r.final_values[q.index()],
            SimValue::from_bool(expect),
            "pattern {pattern:02b}"
        );
    }
}

#[test]
fn register_samples_data_on_clock_edge() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal("D").unwrap();
    let q = b.signal("Q").unwrap();
    b.reg(
        "R",
        DelayRange::from_ns(1.0, 2.0),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    assert_eq!(inputs.len(), 1); // D only; CK is generated from assertion

    let mut map = HashMap::new();
    map.insert(inputs[0], vec![true, false]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 2,
            inputs: map,
        },
    );
    assert!(r.is_clean(), "{:?}", r.violations);
    // After the second cycle's edge the register holds 0 (sampled false).
    assert_eq!(r.final_values[q.index()], SimValue::Zero);
}

#[test]
fn register_flags_ambiguous_data() {
    // Data arrives through a gate whose max delay puts its ambiguity
    // region over the clock edge at 12.5 ns.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal("D").unwrap();
    let dd = b.signal("DD").unwrap();
    let q = b.signal("Q").unwrap();
    // Buffer with 10..15 ns delay: D changes at t=0, DD is ambiguous
    // (U/D) over 10..15, covering the 12.5 ns edge.
    b.buf(
        "SLOW",
        DelayRange::from_ns(10.0, 15.0),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        dd,
    );
    b.reg(
        "R",
        DelayRange::from_ns(1.0, 2.0),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        Conn::new(dd).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    let mut map = HashMap::new();
    // Toggle D so DD is mid-flight at the first edge of cycle 2.
    map.insert(inputs[0], vec![true, false]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 2,
            inputs: map,
        },
    );
    assert!(
        r.violations
            .iter()
            .any(|v| v.kind == SimViolationKind::AmbiguousData),
        "{:?}",
        r.violations
    );
    assert_eq!(r.final_values[q.index()], SimValue::X);
}

#[test]
fn dynamic_setup_check_fires() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal("D").unwrap();
    let dd = b.signal("DD").unwrap();
    // DD settles at 11.5..12.0 ns; the edge is at 12.5: only ~0.5 ns of
    // set-up against a required 2.5.
    b.buf(
        "SLOW",
        DelayRange::from_ns(11.5, 12.0),
        Conn::new(d).with_wire_delay(DelayRange::ZERO),
        dd,
    );
    b.setup_hold(
        "CHK",
        ns(2.5),
        ns(1.5),
        Conn::new(dd).with_wire_delay(DelayRange::ZERO),
        Conn::new(clk).with_wire_delay(DelayRange::ZERO),
    );
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    let mut map = HashMap::new();
    map.insert(inputs[0], vec![true]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 1,
            inputs: map,
        },
    );
    assert!(
        r.violations
            .iter()
            .any(|v| v.kind == SimViolationKind::Setup),
        "{:?}",
        r.violations
    );
}

#[test]
fn min_pulse_width_monitor() {
    // A pulse generator: Q = A AND NOT(A delayed 3ns) gives a ~3 ns pulse
    // when A rises; the monitor requires 5 ns.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A").unwrap();
    let na = b.signal("NA").unwrap();
    let q = b.signal("Q").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.not("INV", DelayRange::from_ns(3.0, 3.0), z(a), na);
    b.and2("G", DelayRange::ZERO, z(a), z(na), q);
    b.min_pulse_width("W", ns(5.0), ns(0.0), z(q));
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    let mut map = HashMap::new();
    map.insert(inputs[0], vec![false, true]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 2,
            inputs: map,
        },
    );
    assert!(
        r.violations
            .iter()
            .any(|v| v.kind == SimViolationKind::MinPulseHigh),
        "{:?}",
        r.violations
    );
}

#[test]
fn simulation_only_covers_exercised_patterns() {
    // The thesis' core argument: a mux whose 1-leg is slow only reveals
    // its set-up problem when the select actually chooses leg 1. The
    // simulator misses the bug for patterns that never select it.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let sel = b.signal("SEL").unwrap();
    let fast = b.signal("FAST").unwrap();
    let slow = b.signal("SLOW IN").unwrap();
    let slowd = b.signal("SLOW D").unwrap();
    let m = b.signal("M").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.buf("SLOWBUF", DelayRange::from_ns(12.0, 12.4), z(slow), slowd);
    b.mux2("MUX", DelayRange::ZERO, z(sel), z(fast), z(slowd), m);
    b.setup_hold("CHK", ns(2.5), ns(0.5), z(m), z(clk));
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    assert_eq!(inputs.len(), 3);

    let mut any_clean = false;
    let mut any_violating = false;
    for pattern in 0..(1u64 << inputs.len()) {
        let stim = Stimulus::from_pattern(&inputs, 1, pattern);
        let r = simulate(&n, &stim);
        if r.violations
            .iter()
            .any(|v| v.kind == SimViolationKind::Setup)
        {
            any_violating = true;
        } else {
            any_clean = true;
        }
    }
    assert!(
        any_clean && any_violating,
        "the bug must be pattern-dependent: clean={any_clean} violating={any_violating}"
    );
}

#[test]
fn inertial_filtering_cancels_stale_events() {
    // Rapid back-to-back input changes through a slow gate: the final
    // value must match the final input, not a stale scheduled one.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal("A").unwrap();
    let q = b.signal("Q").unwrap();
    b.buf(
        "B",
        DelayRange::from_ns(30.0, 40.0),
        Conn::new(a).with_wire_delay(DelayRange::ZERO),
        q,
    );
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    let mut map = HashMap::new();
    map.insert(inputs[0], vec![true, false, false]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 3,
            inputs: map,
        },
    );
    assert_eq!(r.final_values[q.index()], SimValue::Zero);
}
