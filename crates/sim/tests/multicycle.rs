//! Multi-cycle simulation scenarios: clock generation from assertions,
//! pipelines over several cycles, and cycle-dependent stimuli.

use scald_netlist::{Config, Conn, NetlistBuilder};
use scald_sim::{primary_inputs, simulate, SimValue, Stimulus};
use scald_wave::DelayRange;
use std::collections::HashMap;

#[test]
fn two_stage_pipeline_shifts_values() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal("D").unwrap();
    let q1 = b.signal("Q1").unwrap();
    let q2 = b.signal("Q2").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.reg("R1", DelayRange::from_ns(1.0, 2.0), z(clk), z(d), q1);
    b.reg("R2", DelayRange::from_ns(1.0, 2.0), z(clk), z(q1), q2);
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);

    // D = 1,0,0,0: the 1 marches through the pipeline one stage per cycle.
    let mut map = HashMap::new();
    map.insert(inputs[0], vec![true, false, false, false]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 4,
            inputs: map,
        },
    );
    // The first usable clock edge samples Q1 while it still holds its
    // initialization X — a legitimate warm-up ambiguity report.
    assert!(
        r.violations
            .iter()
            .all(|v| v.kind == scald_sim::SimViolationKind::AmbiguousData),
        "{:?}",
        r.violations
    );
    // After 4 cycles both stages have flushed back to 0.
    assert_eq!(r.final_values[q1.index()], SimValue::Zero);
    assert_eq!(r.final_values[q2.index()], SimValue::Zero);

    // D = 0,0,1,1: the final edge (cycle 4 at 162.5 ns) captures D=1 into
    // Q1 and Q1's previous 1 into Q2.
    let mut map = HashMap::new();
    map.insert(inputs[0], vec![false, false, true, true]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 4,
            inputs: map,
        },
    );
    assert_eq!(r.final_values[q1.index()], SimValue::One);
    assert_eq!(r.final_values[q2.index()], SimValue::One);
}

#[test]
fn multi_range_clock_assertion_generates_both_pulses() {
    // A two-pulse clock (.C0-1,4-5): a counter-ish register toggling on
    // it sees two rising edges per cycle.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CKX .C0-1,4-5 (0,0)").unwrap();
    let nq = b.signal("NQ").unwrap();
    let q = b.signal("Q").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.not("INV", DelayRange::from_ns(1.0, 1.0), z(q), nq);
    b.reg("TOGGLE", DelayRange::from_ns(1.0, 1.0), z(clk), z(nq), q);
    let n = b.finish().unwrap();
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 3,
            inputs: HashMap::new(),
        },
    );
    // The toggle register starts X and NOT(X) = X, so without
    // initialization the loop can never resolve: it must terminate with X
    // (reported as ambiguous sampling), never hang.
    assert_eq!(r.final_values[q.index()], SimValue::X);
    assert!(r
        .violations
        .iter()
        .all(|v| v.kind == scald_sim::SimViolationKind::AmbiguousData));
}

#[test]
fn toggle_with_set_initialization_resolves() {
    // Same toggle, but the register has an async SET pulse on cycle 1 via
    // a primary input, so the loop leaves X and truly toggles.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CKX .C0-1,4-5 (0,0)").unwrap();
    let set = b.signal("INIT SET").unwrap();
    let zero = b.signal("GND").unwrap();
    let nq = b.signal("NQ").unwrap();
    let q = b.signal("Q").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.constant("K0", scald_logic::Value::Zero, zero);
    b.not("INV", DelayRange::from_ns(1.0, 1.0), z(q), nq);
    b.reg_sr(
        "TOGGLE",
        DelayRange::from_ns(1.0, 1.0),
        z(clk),
        z(nq),
        z(set),
        z(zero),
        q,
    );
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);
    assert_eq!(inputs.len(), 1); // INIT SET
    let mut map = HashMap::new();
    // SET high during cycle 1 only.
    map.insert(inputs[0], vec![true, false, false, false]);
    let r = simulate(
        &n,
        &Stimulus {
            cycles: 4,
            inputs: map,
        },
    );
    // The async SET pulse breaks the X: from cycle 2 on the register
    // truly toggles, so the final value is a definite level (its exact
    // parity depends on same-instant event ordering at the SET release).
    assert!(
        r.final_values[q.index()].is_definite(),
        "{:?}",
        r.final_values[q.index()]
    );
}

#[test]
fn event_counts_scale_with_cycles() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").unwrap();
    let d = b.signal("D").unwrap();
    let q = b.signal("Q").unwrap();
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.reg("R", DelayRange::from_ns(1.0, 2.0), z(clk), z(d), q);
    let n = b.finish().unwrap();
    let inputs = primary_inputs(&n);

    let run = |cycles: usize| {
        let mut map = HashMap::new();
        map.insert(inputs[0], (0..cycles).map(|c| c % 2 == 0).collect());
        simulate(
            &n,
            &Stimulus {
                cycles,
                inputs: map,
            },
        )
        .events
    };
    let e4 = run(4);
    let e8 = run(8);
    // Events grow roughly linearly with simulated cycles — the per-cycle
    // cost that multiplies with the 2^n pattern count in the thesis'
    // simulation-cost argument.
    assert!(e8 > e4 + (e4 / 2), "e4={e4} e8={e8}");
}
