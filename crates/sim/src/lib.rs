//! Baseline #1: a TEGAS-style min/max six-value gate-level logic simulator
//! (§1.4.1.1 of McWilliams 1980).
//!
//! The thesis argues that verifying timing by logic simulation requires
//! exercising *every distinct timing path* with concrete input patterns —
//! an exponential job that also demands microcode/diagnostics to drive
//! undefined signals. This crate implements that baseline faithfully
//! enough to demonstrate the claim: an event-driven simulator over the
//! same netlists the Timing Verifier consumes, with six values
//! (`0 1 X U D E`), min/max ambiguity scheduling, inertial pulse
//! filtering, and dynamic set-up/hold/pulse-width monitors.
//!
//! ```
//! use scald_netlist::{Config, NetlistBuilder};
//! use scald_sim::{primary_inputs, simulate, Stimulus};
//! use scald_wave::DelayRange;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new(Config::s1_example());
//! let a = b.signal("A")?;
//! let c = b.signal("B")?;
//! let q = b.signal("Q")?;
//! b.and2("G", DelayRange::from_ns(1.0, 2.0), a, c, q);
//! let netlist = b.finish()?;
//!
//! let inputs = primary_inputs(&netlist);
//! let stim = Stimulus::from_pattern(&inputs, 1, 0b11); // both high
//! let result = simulate(&netlist, &stim);
//! assert!(result.is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod value;

pub use engine::{primary_inputs, simulate, SimResult, SimViolation, SimViolationKind, Stimulus};
pub use value::SimValue;
