//! The six-value system of min/max-based logic simulators (§1.4.1.1).
//!
//! TEGAS-style simulators extend `{0, 1}` with an initialization value `X`
//! and ambiguity values for min/max delay regions: `U` (signal rising
//! somewhere in the region), `D` (falling), and `E` (potential spike,
//! hazard or race).

use std::fmt;

/// One of the six TEGAS-style simulation values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimValue {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / uninitialized.
    X,
    /// Rising: 0 before the ambiguity region, 1 after.
    Up,
    /// Falling: 1 before, 0 after.
    Down,
    /// Potential spike, hazard or race.
    Spike,
}

impl SimValue {
    /// From a concrete boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> SimValue {
        if b {
            SimValue::One
        } else {
            SimValue::Zero
        }
    }

    /// `true` for the two definite levels.
    #[must_use]
    pub const fn is_definite(self) -> bool {
        matches!(self, SimValue::Zero | SimValue::One)
    }

    /// `true` for the ambiguity values that mean the signal may be mid
    /// transition.
    #[must_use]
    pub const fn is_ambiguous(self) -> bool {
        matches!(
            self,
            SimValue::Up | SimValue::Down | SimValue::Spike | SimValue::X
        )
    }

    /// The ambiguity value describing a transition from `self` to `to`,
    /// scheduled over a gate's min/max delay window.
    #[must_use]
    pub const fn transition_to(self, to: SimValue) -> SimValue {
        use SimValue::*;
        match (self, to) {
            (Zero, One) => Up,
            (One, Zero) => Down,
            (a, b) if a as u8 == b as u8 => b,
            (_, X) | (X, _) => X,
            // Anything else over an ambiguity window could glitch.
            _ => Spike,
        }
    }

    /// Logical complement.
    #[must_use]
    pub const fn not(self) -> SimValue {
        use SimValue::*;
        match self {
            Zero => One,
            One => Zero,
            X => X,
            Up => Down,
            Down => Up,
            Spike => Spike,
        }
    }

    /// Logical AND with dominance: `0` wins over everything.
    #[must_use]
    pub const fn and(self, other: SimValue) -> SimValue {
        use SimValue::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, v) | (v, One) => v,
            (X, _) | (_, X) => X,
            (Up, Up) => Up,
            (Down, Down) => Down,
            _ => Spike,
        }
    }

    /// Logical OR with dominance: `1` wins over everything.
    #[must_use]
    pub const fn or(self, other: SimValue) -> SimValue {
        use SimValue::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, v) | (v, Zero) => v,
            (X, _) | (_, X) => X,
            (Up, Up) => Up,
            (Down, Down) => Down,
            _ => Spike,
        }
    }

    /// Logical XOR; ambiguity always propagates.
    #[must_use]
    pub const fn xor(self, other: SimValue) -> SimValue {
        use SimValue::*;
        match (self, other) {
            (X, _) | (_, X) => X,
            (Zero, v) | (v, Zero) => v,
            (One, v) | (v, One) => v.not(),
            (Up, Up) | (Down, Down) => Spike,
            _ => Spike,
        }
    }
}

impl fmt::Display for SimValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            SimValue::Zero => '0',
            SimValue::One => '1',
            SimValue::X => 'X',
            SimValue::Up => 'U',
            SimValue::Down => 'D',
            SimValue::Spike => 'E',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SimValue::*;

    const ALL: [SimValue; 6] = [Zero, One, X, Up, Down, Spike];

    #[test]
    fn dominance() {
        for v in ALL {
            assert_eq!(Zero.and(v), Zero);
            assert_eq!(One.or(v), One);
            assert_eq!(One.and(v), v);
            assert_eq!(Zero.or(v), v);
        }
    }

    #[test]
    fn commutativity() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn not_involution() {
        for v in ALL {
            assert_eq!(v.not().not(), v);
        }
    }

    #[test]
    fn transitions() {
        assert_eq!(Zero.transition_to(One), Up);
        assert_eq!(One.transition_to(Zero), Down);
        assert_eq!(One.transition_to(One), One);
        assert_eq!(X.transition_to(One), X);
        assert_eq!(Up.transition_to(Zero), Spike);
    }

    #[test]
    fn ambiguity_classification() {
        assert!(Up.is_ambiguous());
        assert!(X.is_ambiguous());
        assert!(!One.is_ambiguous());
        assert!(One.is_definite());
        assert!(!Spike.is_definite());
    }
}
