//! Min/max event-driven gate-level logic simulation (§1.4.1).
//!
//! This is the *baseline* the Timing Verifier is compared against: a
//! TEGAS-style simulator that needs concrete input values every cycle and
//! therefore must be run over many patterns to cover the distinct timing
//! paths of a design — the exponential cost the symbolic verifier avoids.
//!
//! The simulator is event-driven over absolute time. When a gate input
//! changes at `t` and the output's settled value changes, the output is
//! scheduled to an *ambiguity* value (`U`/`D`/`E`) at `t + min_delay` and
//! to its final value at `t + max_delay`; pulses shorter than the pending
//! window are filtered inertially. Registers sample their data on definite
//! rising clock edges; sampling an ambiguous value, or being clocked by an
//! ambiguous edge, is reported as a dynamic timing violation. Checker
//! primitives are monitored dynamically (set-up/hold distances measured
//! between observed events).
//!
//! Interconnect is modelled by the receiving connection's wire delay added
//! to the gate delay of the evaluation it triggers.

use scald_logic::Value;
use scald_netlist::{Netlist, PrimId, PrimKind, SignalId};
use scald_wave::Time;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::value::SimValue;

/// Per-cycle stimulus for the primary inputs.
#[derive(Debug, Clone, Default)]
pub struct Stimulus {
    /// Number of clock cycles to simulate.
    pub cycles: usize,
    /// For each driven primary input: its value on each cycle.
    pub inputs: HashMap<SignalId, Vec<bool>>,
}

impl Stimulus {
    /// Builds a stimulus from one bit per `(input, cycle)` taken from the
    /// low bits of `pattern` — the enumeration the exhaustive-coverage
    /// benchmark sweeps.
    #[must_use]
    pub fn from_pattern(inputs: &[SignalId], cycles: usize, pattern: u64) -> Stimulus {
        let mut map = HashMap::new();
        for (i, sid) in inputs.iter().enumerate() {
            let vals = (0..cycles)
                .map(|c| (pattern >> (i * cycles + c)) & 1 == 1)
                .collect();
            map.insert(*sid, vals);
        }
        Stimulus {
            cycles,
            inputs: map,
        }
    }
}

/// A dynamic timing violation observed during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimViolation {
    /// What went wrong.
    pub kind: SimViolationKind,
    /// The checker or storage primitive reporting it.
    pub source: String,
    /// Absolute simulation time.
    pub at: Time,
}

/// Classes of dynamic violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimViolationKind {
    /// Input changed within the set-up interval before a clock edge.
    Setup,
    /// Input changed within the hold interval after a clock edge.
    Hold,
    /// Input changed while the checker's clock was true.
    ChangedWhileTrue,
    /// High pulse narrower than specified.
    MinPulseHigh,
    /// Low pulse narrower than specified.
    MinPulseLow,
    /// A register sampled an ambiguous (`X`/`U`/`D`/`E`) data value.
    AmbiguousData,
    /// A register was clocked by an ambiguous edge (possible hazard).
    AmbiguousClock,
}

impl fmt::Display for SimViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SimViolationKind::Setup => "SETUP",
            SimViolationKind::Hold => "HOLD",
            SimViolationKind::ChangedWhileTrue => "CHANGED WHILE CLOCK TRUE",
            SimViolationKind::MinPulseHigh => "MIN HIGH PULSE",
            SimViolationKind::MinPulseLow => "MIN LOW PULSE",
            SimViolationKind::AmbiguousData => "REGISTER SAMPLED AMBIGUOUS DATA",
            SimViolationKind::AmbiguousClock => "REGISTER CLOCKED BY AMBIGUOUS EDGE",
        };
        f.write_str(s)
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Dynamic violations, in time order.
    pub violations: Vec<SimViolation>,
    /// Events processed (signal value changes).
    pub events: u64,
    /// Final value of every signal.
    pub final_values: Vec<SimValue>,
    /// Per-signal event trace: `(time, new value)` in time order, starting
    /// from the implicit `X` at time zero. Lets callers reconstruct the
    /// concrete waveform at any instant (see [`SimResult::value_at`]).
    pub traces: Vec<Vec<(Time, SimValue)>>,
}

impl SimResult {
    /// `true` if the run saw no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The concrete value a signal held at absolute instant `t`: the value
    /// of its latest trace event at or before `t` (`X` before the first).
    #[must_use]
    pub fn value_at(&self, signal: scald_netlist::SignalId, t: Time) -> SimValue {
        let trace = &self.traces[signal.index()];
        match trace.partition_point(|&(et, _)| et <= t) {
            0 => SimValue::X,
            i => trace[i - 1].1,
        }
    }
}

/// The primary inputs a stimulus must drive: undriven signals without a
/// clock assertion (clocks are generated from their assertions).
#[must_use]
pub fn primary_inputs(netlist: &Netlist) -> Vec<SignalId> {
    netlist
        .iter_signals()
        .filter(|(sid, sig)| {
            netlist.driver(*sid).is_none()
                && !sig.assertion.as_ref().is_some_and(|a| a.kind.is_clock())
        })
        .map(|(sid, _)| sid)
        .collect()
}

struct CheckerState {
    /// Last observed change time per watched input signal index 0.
    last_input_change: Option<Time>,
    /// Last rising edge of the checker clock.
    last_rise: Option<Time>,
    /// Last falling edge of the checker clock.
    last_fall: Option<Time>,
    /// Current clock pin level.
    clock_high: bool,
}

/// Runs an event-driven min/max simulation of `netlist` under `stimulus`.
///
/// Undriven inputs missing from the stimulus hold `X` for the whole run.
///
/// # Panics
///
/// Panics if a stimulus vector is shorter than `stimulus.cycles`.
#[must_use]
pub fn simulate(netlist: &Netlist, stimulus: &Stimulus) -> SimResult {
    let period = netlist.config().timing.period;
    let timing = netlist.config().timing;
    let n_signals = netlist.signals().len();
    let mut values = vec![SimValue::X; n_signals];
    // The settled value each driver is currently heading towards.
    let mut target = vec![SimValue::X; n_signals];
    let mut queue: BTreeMap<(Time, u64), (SignalId, SimValue)> = BTreeMap::new();
    let mut seq = 0u64;
    let schedule = |queue: &mut BTreeMap<(Time, u64), (SignalId, SimValue)>,
                    seq: &mut u64,
                    t: Time,
                    sid: SignalId,
                    v: SimValue| {
        *seq += 1;
        queue.insert((t, *seq), (sid, v));
    };

    // Clock generation from assertions: nominal edges every cycle.
    for (sid, sig) in netlist.iter_signals() {
        if let Some(a) = &sig.assertion {
            if a.kind.is_clock() {
                let (wave, _) = a.to_state(&timing);
                for c in 0..stimulus.cycles {
                    let base = period * c as i64;
                    for &(t, v) in wave.transitions() {
                        let sv = match v {
                            Value::One => SimValue::One,
                            Value::Zero => SimValue::Zero,
                            _ => SimValue::X,
                        };
                        schedule(&mut queue, &mut seq, base + t, sid, sv);
                    }
                }
            }
        }
    }
    // Primary-input stimulus: new value at each cycle boundary.
    for (sid, vals) in &stimulus.inputs {
        assert!(
            vals.len() >= stimulus.cycles,
            "stimulus for {:?} shorter than cycle count",
            netlist.signal(*sid).name
        );
        for (c, v) in vals.iter().take(stimulus.cycles).enumerate() {
            schedule(
                &mut queue,
                &mut seq,
                period * c as i64,
                *sid,
                SimValue::from_bool(*v),
            );
        }
    }
    // Constants.
    for (_, prim) in netlist.iter_prims() {
        if let PrimKind::Const(v) = prim.kind {
            if let Some(out) = prim.output {
                let sv = match v {
                    Value::One => SimValue::One,
                    Value::Zero => SimValue::Zero,
                    _ => SimValue::X,
                };
                schedule(&mut queue, &mut seq, Time::ZERO, out, sv);
            }
        }
    }

    // Checker bookkeeping.
    let mut checkers: HashMap<PrimId, CheckerState> = netlist
        .iter_prims()
        .filter(|(_, p)| p.kind.is_checker())
        .map(|(pid, _)| {
            (
                pid,
                CheckerState {
                    last_input_change: None,
                    last_rise: None,
                    last_fall: None,
                    clock_high: false,
                },
            )
        })
        .collect();

    let mut violations = Vec::new();
    let mut traces: Vec<Vec<(Time, SimValue)>> = vec![Vec::new(); n_signals];
    let mut events = 0u64;
    let end = period * stimulus.cycles as i64 + period;

    while let Some((&(t, s), &(sid, new_v))) = queue.iter().next() {
        queue.remove(&(t, s));
        if t > end {
            break;
        }
        let old = values[sid.index()];
        if old == new_v {
            continue;
        }
        values[sid.index()] = new_v;
        traces[sid.index()].push((t, new_v));
        events += 1;

        // Notify every primitive reading this signal.
        for &pid in netlist.fanout(sid) {
            let prim = netlist.prim(pid);
            match prim.kind {
                PrimKind::And
                | PrimKind::Or
                | PrimKind::Nand
                | PrimKind::Nor
                | PrimKind::Xor
                | PrimKind::Xnor
                | PrimKind::Not
                | PrimKind::Buf
                | PrimKind::Chg
                | PrimKind::Delay
                | PrimKind::Mux { .. } => {
                    let out = prim.output.expect("gates drive outputs");
                    let pin = |i: usize| -> SimValue {
                        let c = &prim.inputs[i];
                        let v = values[c.signal.index()];
                        if c.invert {
                            v.not()
                        } else {
                            v
                        }
                    };
                    let f = match prim.kind {
                        PrimKind::And => fold(prim.inputs.len(), &pin, SimValue::and),
                        PrimKind::Or => fold(prim.inputs.len(), &pin, SimValue::or),
                        PrimKind::Nand => fold(prim.inputs.len(), &pin, SimValue::and).not(),
                        PrimKind::Nor => fold(prim.inputs.len(), &pin, SimValue::or).not(),
                        PrimKind::Xor => fold(prim.inputs.len(), &pin, SimValue::xor),
                        PrimKind::Xnor => fold(prim.inputs.len(), &pin, SimValue::xor).not(),
                        PrimKind::Not => pin(0).not(),
                        PrimKind::Buf | PrimKind::Delay | PrimKind::Chg => {
                            // CHG in concrete simulation is a buffer of its
                            // first input's "changing-ness"; model as the
                            // fold of all inputs via XOR-ish sensitivity:
                            // simplest faithful choice is to recompute a
                            // deterministic function (parity).
                            if prim.kind == PrimKind::Chg {
                                fold(prim.inputs.len(), &pin, SimValue::xor)
                            } else {
                                pin(0)
                            }
                        }
                        PrimKind::Mux { .. } => {
                            let sel = pin(0);
                            match sel {
                                SimValue::Zero => pin(1),
                                SimValue::One => pin(2.min(prim.inputs.len() - 1)),
                                _ => SimValue::X,
                            }
                        }
                        _ => unreachable!(),
                    };
                    if f != target[out.index()] {
                        let trigger_conn = prim
                            .inputs
                            .iter()
                            .find(|c| c.signal == sid)
                            .expect("fanout lists only readers");
                        let wire = netlist.wire_delay(trigger_conn);
                        let t_min = t + wire.min + prim.delay.min;
                        let t_max = t + wire.max + prim.delay.max;
                        // Inertial filtering: cancel pending events on the
                        // output at or after the new ambiguity start.
                        let stale: Vec<(Time, u64)> = queue
                            .range((t_min, 0)..)
                            .filter(|(_, (osid, _))| *osid == out)
                            .map(|(k, _)| *k)
                            .collect();
                        for k in stale {
                            queue.remove(&k);
                        }
                        let ambiguity = target[out.index()].transition_to(f);
                        if t_min < t_max && ambiguity != f {
                            schedule(&mut queue, &mut seq, t_min, out, ambiguity);
                        }
                        schedule(&mut queue, &mut seq, t_max, out, f);
                        target[out.index()] = f;
                    }
                }
                PrimKind::Reg { set_reset } | PrimKind::Latch { set_reset } => {
                    let is_reg = matches!(prim.kind, PrimKind::Reg { .. });
                    let out = prim.output.expect("storage drives outputs");
                    let pin = |i: usize| -> SimValue {
                        let c = &prim.inputs[i];
                        let v = values[c.signal.index()];
                        if c.invert {
                            v.not()
                        } else {
                            v
                        }
                    };
                    // Asynchronous overrides first.
                    if set_reset {
                        let (sv, rv) = (pin(2), pin(3));
                        if sv == SimValue::One || rv == SimValue::One {
                            let forced = match (sv, rv) {
                                (SimValue::One, SimValue::One) => SimValue::X,
                                (SimValue::One, _) => SimValue::One,
                                _ => SimValue::Zero,
                            };
                            if forced != target[out.index()] {
                                schedule_storage(
                                    &mut queue,
                                    &mut seq,
                                    &mut target,
                                    netlist,
                                    prim,
                                    out,
                                    t,
                                    forced,
                                );
                            }
                            continue;
                        }
                    }
                    let is_ctl = prim.inputs[0].signal == sid;
                    let ctl_new = pin(0);
                    if is_reg {
                        if is_ctl {
                            let ctl_old = if prim.inputs[0].invert {
                                old.not()
                            } else {
                                old
                            };
                            if ctl_old == SimValue::Zero && ctl_new == SimValue::One {
                                // Definite rising edge: sample.
                                let d = pin(1);
                                if d.is_definite() {
                                    if d != target[out.index()] {
                                        schedule_storage(
                                            &mut queue,
                                            &mut seq,
                                            &mut target,
                                            netlist,
                                            prim,
                                            out,
                                            t,
                                            d,
                                        );
                                    }
                                } else {
                                    violations.push(SimViolation {
                                        kind: SimViolationKind::AmbiguousData,
                                        source: prim.name.clone(),
                                        at: t,
                                    });
                                    schedule_storage(
                                        &mut queue,
                                        &mut seq,
                                        &mut target,
                                        netlist,
                                        prim,
                                        out,
                                        t,
                                        SimValue::X,
                                    );
                                }
                            } else if ctl_old == SimValue::Zero && ctl_new.is_ambiguous() {
                                violations.push(SimViolation {
                                    kind: SimViolationKind::AmbiguousClock,
                                    source: prim.name.clone(),
                                    at: t,
                                });
                                schedule_storage(
                                    &mut queue,
                                    &mut seq,
                                    &mut target,
                                    netlist,
                                    prim,
                                    out,
                                    t,
                                    SimValue::X,
                                );
                            }
                        }
                    } else {
                        // Latch: transparent while enable is high.
                        match ctl_new {
                            SimValue::One => {
                                let d = pin(1);
                                if d != target[out.index()] {
                                    schedule_storage(
                                        &mut queue,
                                        &mut seq,
                                        &mut target,
                                        netlist,
                                        prim,
                                        out,
                                        t,
                                        d,
                                    );
                                }
                            }
                            SimValue::Zero => {} // holds
                            _ => {
                                let d = pin(1);
                                if d != target[out.index()] {
                                    schedule_storage(
                                        &mut queue,
                                        &mut seq,
                                        &mut target,
                                        netlist,
                                        prim,
                                        out,
                                        t,
                                        SimValue::X,
                                    );
                                }
                            }
                        }
                    }
                }
                PrimKind::SetupHold { setup, hold }
                | PrimKind::SetupRiseHoldFall { setup, hold } => {
                    let srhf = matches!(prim.kind, PrimKind::SetupRiseHoldFall { .. });
                    let input_sig = prim.inputs[0].signal;
                    let clock_sig = prim.inputs[1].signal;
                    let st = checkers.get_mut(&pid).expect("checker state exists");
                    if sid == input_sig {
                        st.last_input_change = Some(t);
                        if srhf && st.clock_high {
                            violations.push(SimViolation {
                                kind: SimViolationKind::ChangedWhileTrue,
                                source: prim.name.clone(),
                                at: t,
                            });
                        }
                        // Hold check against the most recent relevant edge.
                        let anchor = if srhf { st.last_fall } else { st.last_rise };
                        if let Some(e) = anchor {
                            if t - e < hold {
                                violations.push(SimViolation {
                                    kind: SimViolationKind::Hold,
                                    source: prim.name.clone(),
                                    at: t,
                                });
                            }
                        }
                    }
                    if sid == clock_sig {
                        let cv = if prim.inputs[1].invert {
                            new_v.not()
                        } else {
                            new_v
                        };
                        let was_high = st.clock_high;
                        st.clock_high = cv == SimValue::One;
                        if !was_high && cv == SimValue::One {
                            st.last_rise = Some(t);
                            if setup > Time::ZERO {
                                if let Some(c) = st.last_input_change {
                                    if t - c < setup {
                                        violations.push(SimViolation {
                                            kind: SimViolationKind::Setup,
                                            source: prim.name.clone(),
                                            at: t,
                                        });
                                    }
                                }
                            }
                        }
                        if was_high && cv == SimValue::Zero {
                            st.last_fall = Some(t);
                        }
                    }
                }
                PrimKind::MinPulseWidth { high, low } => {
                    let cv = if prim.inputs[0].invert {
                        new_v.not()
                    } else {
                        new_v
                    };
                    let ov = if prim.inputs[0].invert {
                        old.not()
                    } else {
                        old
                    };
                    let st = checkers.get_mut(&pid).expect("checker state exists");
                    if ov != SimValue::One && cv == SimValue::One {
                        if let Some(f) = st.last_fall {
                            if low > Time::ZERO && t - f < low {
                                violations.push(SimViolation {
                                    kind: SimViolationKind::MinPulseLow,
                                    source: prim.name.clone(),
                                    at: t,
                                });
                            }
                        }
                        st.last_rise = Some(t);
                    }
                    if ov == SimValue::One && cv != SimValue::One {
                        if let Some(r) = st.last_rise {
                            if high > Time::ZERO && t - r < high {
                                violations.push(SimViolation {
                                    kind: SimViolationKind::MinPulseHigh,
                                    source: prim.name.clone(),
                                    at: t,
                                });
                            }
                        }
                        st.last_fall = Some(t);
                    }
                }
                PrimKind::Const(_) => {}
            }
        }
    }

    SimResult {
        violations,
        events,
        final_values: values,
        traces,
    }
}

fn fold(
    n: usize,
    pin: &dyn Fn(usize) -> SimValue,
    f: impl Fn(SimValue, SimValue) -> SimValue,
) -> SimValue {
    let mut acc = pin(0);
    for i in 1..n {
        acc = f(acc, pin(i));
    }
    acc
}

/// Schedules a storage element's output transition through its min/max
/// delay window.
#[allow(clippy::too_many_arguments)]
fn schedule_storage(
    queue: &mut BTreeMap<(Time, u64), (SignalId, SimValue)>,
    seq: &mut u64,
    target: &mut [SimValue],
    _netlist: &Netlist,
    prim: &scald_netlist::Primitive,
    out: SignalId,
    t: Time,
    v: SimValue,
) {
    let t_min = t + prim.delay.min;
    let t_max = t + prim.delay.max;
    let stale: Vec<(Time, u64)> = queue
        .range((t_min, 0)..)
        .filter(|(_, (osid, _))| *osid == out)
        .map(|(k, _)| *k)
        .collect();
    for k in stale {
        queue.remove(&k);
    }
    let ambiguity = target[out.index()].transition_to(v);
    if t_min < t_max && ambiguity != v {
        *seq += 1;
        queue.insert((t_min, *seq), (out, ambiguity));
    }
    *seq += 1;
    queue.insert((t_max, *seq), (out, v));
    target[out.index()] = v;
}
