//! Property tests over the scale-sweep generator: 50 seeds with the
//! shape knobs swept alongside, each checked for the well-formedness
//! invariants the engine's hot path depends on.
//!
//! * Every signal is either driven by a primitive or carries a stable or
//!   periodic assertion — nothing floats X into the settle loop.
//! * The CSR fan-out index (the CALL LIST ARRAY of Table 3-3) agrees
//!   exactly, row by row, with a reverse index rebuilt from the
//!   primitives' input lists: sorted, deduplicated, no phantom readers
//!   and no missing ones.

use scald_gen::scale::{scale_netlist, Fanout, ScaleOptions};
use scald_netlist::Netlist;

fn check_well_formed(n: &Netlist, what: &str) {
    // Rebuild the fan-out relation from the primitive side.
    let mut rebuilt: Vec<Vec<scald_netlist::PrimId>> = vec![Vec::new(); n.signals().len()];
    for (pid, p) in n.iter_prims() {
        for c in &p.inputs {
            rebuilt[c.signal.index()].push(pid);
        }
    }
    for row in &mut rebuilt {
        row.sort_unstable();
        row.dedup();
    }

    let csr = n.fanout_csr();
    assert_eq!(
        csr.rows(),
        n.signals().len(),
        "{what}: one CSR row per signal"
    );
    let mut items = 0usize;
    for (sid, sig) in n.iter_signals() {
        assert!(
            !n.drivers(sid).is_empty() || sig.assertion.is_some(),
            "{what}: signal {} is neither driven nor asserted",
            sig.full_name()
        );
        let row = csr.row(sid.index());
        assert_eq!(
            row,
            rebuilt[sid.index()].as_slice(),
            "{what}: CSR fanout row for {} disagrees with the rebuilt index",
            sig.full_name()
        );
        assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "{what}: CSR row for {} is not strictly sorted",
            sig.full_name()
        );
        // The accessor and the raw CSR row must be the same slice.
        assert_eq!(row, n.fanout(sid), "{what}: fanout() bypasses the CSR");
        items += row.len();
    }
    assert_eq!(csr.len(), items, "{what}: CSR item count");

    // Reverse direction: every driver edge is backed by a real output.
    for (sid, _) in n.iter_signals() {
        for &pid in n.drivers(sid) {
            assert_eq!(
                n.prims()[pid.index()].output,
                Some(sid),
                "{what}: driver index lists a primitive that does not drive it"
            );
        }
    }
}

#[test]
fn fifty_seeds_are_well_formed() {
    for seed in 0u64..50 {
        // Sweep the shape knobs alongside the seed so the 50 designs
        // cover deep/wide, narrow/hubbed and 1..4-clock corners.
        let opts = ScaleOptions {
            target_prims: 400 + (seed as usize % 7) * 130,
            depth: 0.10 + 0.85 * ((seed % 10) as f64 / 9.0),
            fanout: if seed % 3 == 0 {
                Fanout::Narrow
            } else {
                Fanout::Hubs {
                    percent: 2 + (seed as u32 % 12),
                    taps: 1 + (seed as u32 % 4),
                }
            },
            clocks: 1 + (seed as usize % 4),
            seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        };
        let (n, stats) = scale_netlist(&opts);
        assert!(stats.prims >= opts.target_prims, "seed {seed} undershot");
        check_well_formed(&n, &format!("seed {seed}"));
    }
}

#[test]
fn s1_generator_is_well_formed_too() {
    use scald_gen::s1::{s1_like_netlist, S1Options};
    let (n, _) = s1_like_netlist(S1Options::small());
    check_well_formed(&n, "s1 small");
}
