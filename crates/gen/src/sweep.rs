//! Mode-sweep generator: designs whose case sweeps share prefixes.
//!
//! The case-tree engine (DESIGN.md § "The case tree") settles a shared
//! assignment prefix once per trie node instead of once per case. To
//! measure that, the benchmark needs a design where an exhaustive sweep
//! has *structured* cost: a handful of mode bits whose cones differ by
//! orders of magnitude. This module generates one:
//!
//! * a **master** mode bit — created first, so it has the lowest signal
//!   id and becomes the root split of the case trie under the engine's
//!   canonical assignment order — fanning out to `master_slices`
//!   datapath slices, and
//! * `mode_bits - 1` **block** mode bits, each fanning out to a small
//!   private block of `block_slices` slices.
//!
//! An exhaustive sweep over `[master, block 0, block 1, ...]` therefore
//! re-settles the expensive master cone on *every* case under the naive
//! independent-case engine, but only once per root branch under the
//! case tree — the per-case settle effort collapses from
//! `O(master + blocks)` to `O(block)`, which is what
//! `BENCH_cases.json` records at 10/100/1000 cases.
//!
//! Every slice is the clean datapath cell of [`crate::scale`] (stable
//! asserted data, late capture clock, set-up/hold checker), so sweep
//! cost measures the engine, not violation bookkeeping.

use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_rng::Rng;
use scald_wave::{DelayRange, Time};

/// Options for the mode-sweep generator.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Total case-sweepable mode bits, master included (at least 1).
    /// `CaseSet::exhaustive` over all of them yields `2^mode_bits`
    /// cases.
    pub mode_bits: usize,
    /// Datapath slices (3 primitives each) fanned out from the master
    /// mode bit — the expensive shared cone.
    pub master_slices: usize,
    /// Datapath slices per block mode bit — the cheap private cones.
    pub block_slices: usize,
    /// RNG seed (stable-assertion jitter), for reproducibility.
    pub seed: u64,
}

impl Default for SweepOptions {
    /// Ten mode bits (a 1024-case exhaustive sweep) over a master cone
    /// two orders of magnitude heavier than each block cone.
    fn default() -> SweepOptions {
        SweepOptions {
            mode_bits: 10,
            master_slices: 1500,
            block_slices: 10,
            seed: 0x5ca1f,
        }
    }
}

/// Statistics of the generated design.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Primitives emitted.
    pub prims: usize,
    /// Signals created.
    pub signals: usize,
    /// The sweepable mode-bit signal names, in signal-id order: the
    /// master first, then the block bits. Feed these to
    /// `CaseSet::exhaustive` to build the shared-prefix sweep.
    pub mode_bits: Vec<String>,
}

/// One clean datapath slice reading `mode`: a combinational stage into a
/// registered capture with its set-up/hold checker (3 primitives).
fn emit_slice(b: &mut NetlistBuilder, rng: &mut Rng, name: &str, mode: SignalId, clk: SignalId) {
    let ns = Time::from_ns;
    let lo = ["3", "3.5", "4"][rng.below(3) as usize];
    let din = b
        .signal(&format!("{name}/IN .S{lo}-8"))
        .expect("valid stable input");
    let logic = b.signal(&format!("{name}/LOGIC")).expect("valid");
    let q = b.signal(&format!("{name}/Q")).expect("valid");
    b.chg(
        format!("{name}/LOGIC"),
        DelayRange::from_ns(1.5, 3.0),
        vec![Conn::new(mode), Conn::new(din)],
        logic,
    );
    b.reg(
        format!("{name}/REG"),
        DelayRange::from_ns(1.5, 4.5),
        clk,
        logic,
        q,
    );
    b.setup_hold(format!("{name}/CHK"), ns(2.5), ns(1.5), logic, clk);
}

/// Generates a mode-sweep design (see the module docs).
///
/// # Panics
///
/// Panics if `opts.mode_bits` is 0, or on internal builder
/// inconsistencies (a bug).
#[must_use]
pub fn sweep_netlist(opts: &SweepOptions) -> (Netlist, SweepStats) {
    assert!(opts.mode_bits >= 1, "a sweep needs at least the master bit");
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut b = NetlistBuilder::new(Config::s1_example());

    // The mode bits come first so the master holds the lowest signal id:
    // the engine sorts case assignments canonically by id, making the
    // master the root split of every exhaustive sweep's trie. The bits
    // are undriven and unasserted — assumed stable — so a case override
    // pins them to a constant for the whole cycle.
    let master = b.signal("MODE MASTER").expect("valid master bit");
    let blocks: Vec<SignalId> = (0..opts.mode_bits - 1)
        .map(|i| b.signal(&format!("MODE {i}")).expect("valid block bit"))
        .collect();
    let mut mode_bits = vec!["MODE MASTER".to_owned()];
    mode_bits.extend((0..opts.mode_bits - 1).map(|i| format!("MODE {i}")));

    // Late capture phase: high units 6..7.6 of the 8-unit period, same
    // clean timing as the scale generator's slices.
    let clk = b.signal("CLK .P6-7.6").expect("valid clock");

    for i in 0..opts.master_slices {
        emit_slice(&mut b, &mut rng, &format!("MASTER{i}"), master, clk);
    }
    for (bi, &bit) in blocks.iter().enumerate() {
        for i in 0..opts.block_slices {
            emit_slice(&mut b, &mut rng, &format!("B{bi}N{i}"), bit, clk);
        }
    }

    let netlist = b.finish().expect("sweep design is well-formed");
    let stats = SweepStats {
        prims: netlist.prims().len(),
        signals: netlist.signals().len(),
        mode_bits,
    };
    (netlist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_bit_holds_the_lowest_signal_id() {
        let (netlist, stats) = sweep_netlist(&SweepOptions {
            mode_bits: 4,
            master_slices: 8,
            block_slices: 2,
            seed: 1,
        });
        assert_eq!(stats.mode_bits.len(), 4);
        assert_eq!(stats.mode_bits[0], "MODE MASTER");
        // 3 prims per slice: 8 master + 3 blocks of 2.
        assert_eq!(stats.prims, 3 * (8 + 3 * 2));
        let ids: Vec<usize> = stats
            .mode_bits
            .iter()
            .map(|name| {
                netlist
                    .signal_by_name(name)
                    .unwrap_or_else(|| panic!("{name} exists"))
                    .index()
            })
            .collect();
        assert_eq!(ids[0], 0, "master created first");
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ascending ids: {ids:?}"
        );
    }

    #[test]
    fn sweep_design_verifies_clean() {
        let (netlist, _) = sweep_netlist(&SweepOptions {
            mode_bits: 3,
            master_slices: 6,
            block_slices: 2,
            seed: 2,
        });
        let mut v = scald_verifier::Verifier::new(netlist);
        let outcome = v
            .run(&scald_verifier::RunOptions::new())
            .expect("settles clean");
        assert!(outcome.cases.iter().all(|c| c.violations.is_empty()));
    }
}
