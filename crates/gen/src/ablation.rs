//! Ablation of the vector-width symmetry (§3.3.2).
//!
//! The thesis credits the one-timing-value-per-vector representation with
//! reducing the S-1 example from 53 833 primitives to 8 282 (6.5×).
//! [`bit_blast`] undoes that optimization — expanding every vector
//! primitive into per-bit scalar copies — so the saving can be *measured*:
//! verify the original and the blasted netlist and compare primitive
//! counts, event counts and wall time (`cargo run -p scald-bench --bin
//! ablation --release`).

use scald_netlist::{Conn, Netlist, NetlistBuilder, SignalId};
use std::collections::HashMap;

/// Expands every vector primitive into per-bit scalar copies.
///
/// Each vector signal `N` of width `w` becomes scalar signals `N[0]` …
/// `N[w-1]` (assertions, wire-delay overrides and wired-OR flags copied to
/// every bit); each primitive driving a `w`-bit output becomes `w` copies.
/// A scalar input (e.g. a clock or select) is shared by all copies; a
/// vector input of a different width contributes bit `i % width` — the
/// same convention hardware replication uses.
///
/// # Panics
///
/// Panics only if the input netlist is internally inconsistent (a bug).
#[must_use]
pub fn bit_blast(netlist: &Netlist) -> Netlist {
    let mut b = NetlistBuilder::new(*netlist.config());
    // (original signal, bit) -> new scalar signal.
    let mut bits: HashMap<(SignalId, u32), SignalId> = HashMap::new();

    for (sid, sig) in netlist.iter_signals() {
        for bit in 0..sig.width.max(1) {
            let base = if sig.width > 1 {
                format!("{}[{bit}]", sig.name)
            } else {
                sig.name.clone()
            };
            let full = match &sig.assertion {
                Some(a) => format!("{base} {a}"),
                None => base,
            };
            let new = b.signal(&full).expect("blasted signal name is valid");
            if let Some(wd) = sig.wire_delay {
                b.set_wire_delay(new, wd);
            }
            if sig.wired_or {
                b.mark_wired_or(new);
            }
            bits.insert((sid, bit), new);
        }
    }

    let pick = |bits: &HashMap<(SignalId, u32), SignalId>, sid: SignalId, bit: u32| -> SignalId {
        let w = netlist.signal(sid).width.max(1);
        bits[&(sid, bit % w)]
    };

    for (_, prim) in netlist.iter_prims() {
        let out_width = prim.output.map_or_else(
            || netlist.signal(prim.inputs[0].signal).width.max(1),
            |o| netlist.signal(o).width.max(1),
        );
        for bit in 0..out_width {
            let inputs: Vec<Conn> = prim
                .inputs
                .iter()
                .map(|c| {
                    let mut conn = Conn::new(pick(&bits, c.signal, bit));
                    if c.invert {
                        conn = conn.inverted();
                    }
                    if let Some(d) = &c.directive {
                        conn = conn.with_directive(d.clone());
                    }
                    if let Some(wd) = c.wire_delay {
                        conn = conn.with_wire_delay(wd);
                    }
                    conn
                })
                .collect();
            let output = prim.output.map(|o| pick(&bits, o, bit));
            let name = if out_width > 1 {
                format!("{}[{bit}]", prim.name)
            } else {
                prim.name.clone()
            };
            b.prim(name, prim.kind, prim.delay, inputs, output);
        }
    }
    b.finish().expect("blasted netlist is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::register_file_circuit;
    use crate::s1::{s1_like_netlist, S1Options};

    #[test]
    fn blast_multiplies_primitives_by_width() {
        let (n, _) = register_file_circuit();
        let blasted = bit_blast(&n);
        let expect: usize = n
            .prims()
            .iter()
            .map(|p| {
                p.output.map_or_else(
                    || n.signal(p.inputs[0].signal).width.max(1),
                    |o| n.signal(o).width.max(1),
                ) as usize
            })
            .sum();
        assert_eq!(blasted.prims().len(), expect);
        assert!(blasted.prims().len() > n.prims().len());
        // Everything is scalar now.
        assert!(blasted.signals().iter().all(|s| s.width == 1));
    }

    #[test]
    fn blast_preserves_verification_verdicts() {
        use scald_verifier::{RunOptions, Verifier};
        let (n, _) = register_file_circuit();
        let mut v = Verifier::new(n.clone());
        let original = v.run(&RunOptions::new()).expect("settles").into_sole();
        let mut vb = Verifier::new(bit_blast(&n));
        let blasted = vb.run(&RunOptions::new()).expect("settles").into_sole();
        // Violations multiply by the vector width, but the per-cause
        // classes are identical.
        assert_eq!(original.is_clean(), blasted.is_clean());
        assert!(blasted.violations.len() >= original.violations.len());
        assert!(blasted.events >= original.events);
    }

    #[test]
    fn blast_scales_on_generated_design() {
        let (n, _) = s1_like_netlist(S1Options {
            chips: 60,
            seed: 0x5ca1d,
        });
        let blasted = bit_blast(&n);
        let ratio = blasted.prims().len() as f64 / n.prims().len() as f64;
        // The thesis' ratio was 53 833 / 8 282 ≈ 6.5.
        assert!(ratio > 3.0, "ratio {ratio}");
    }
}
