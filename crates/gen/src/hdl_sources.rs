//! Ready-made HDL sources for the thesis' component library and circuits.
//!
//! These are the textual equivalents of the macro drawings in Figs 3-5
//! through 3-9 (the Fairchild F10145A register file, the `10176` register,
//! the `10173` multiplexer, the `10105` OR gate and the ALU), plus the
//! Fig 2-5 example circuit wired from them.

/// The component library of Figs 3-5..3-9, as macro definitions. Append a
/// `top; … end;` block to use it.
#[must_use]
pub fn component_library() -> &'static str {
    r"
-- Fig 3-5: 16-word RAM, Fairchild F10145A data-sheet timing.
macro '16W RAM 10145A' (SIZE=4)
    (WE, CS, A<0:3>, I<0:SIZE-1>/P) -> (DO<0:SIZE-1>/P);
  -- Write-data set-up/hold against the falling write-enable.
  setup_hold setup=4.5 hold=-1.0 (I, -WE);
  -- Address stability around the whole write pulse.
  setup_rise_hold_fall setup=3.5 hold=1.0 (A, WE);
  min_pulse_width high=4.0 (WE);
  -- Read path: 'CHG' 1.5:3.0 for chip select, '3 CHG' 3.0:6.0 for the
  -- address/data path.
  signal CSD/M;
  chg delay=1.5:3.0 (CS) -> (CSD/M);
  chg delay=3.0:6.0 (A, WE, CSD/M) -> (DO);
end;

-- Fig 3-7: edge-triggered register.
macro 'REG 10176' (SIZE=1) (CK, I<0:SIZE-1>/P) -> (Q<0:SIZE-1>/P);
  reg delay=1.5:4.5 (CK, I) -> (Q);
  setup_hold setup=2.5 hold=1.5 (I, CK);
end;

-- Fig 3-6: 2-input multiplexer (select adds 0.3:1.2 on top of 1.2:3.3).
macro '2 MUX 10173' (SIZE=1) (S, D0<0:SIZE-1>/P, D1<0:SIZE-1>/P)
    -> (Q<0:SIZE-1>/P);
  signal SD/M;
  delay delay=0.3:1.2 (S) -> (SD/M);
  mux delay=1.2:3.3 (SD/M, D0, D1) -> (Q);
end;

-- Fig 3-8: 2-input OR gate.
macro '2 OR 10105' (SIZE=1) (A<0:SIZE-1>/P, B<0:SIZE-1>/P)
    -> (Q<0:SIZE-1>/P);
  or delay=1.0:2.9 (A, B) -> (Q);
end;
"
}

/// The Fig 2-5 register-file example circuit, wired from the component
/// library: address multiplexer, gated write enable (with the `&H`
/// directive), the RAM, and the output register. Designed per §3.2 to run
/// at 50 ns with the default 0.0/2.0 ns wires and a 0.0/6.0 ns address
/// run.
#[must_use]
pub fn register_file_example() -> String {
    format!(
        "design REGISTER FILE EXAMPLE;\n\
         period 50.0;\nclock_unit 6.25;\nwire_delay 0.0 2.0;\n\
         {}\n\
         top;\n\
         \x20 wire_delay 'ADR' 0.0 6.0;\n\x20 wire_delay 'REG CLK' 0.0 0.0;\n\x20 wire_delay 'R/W SEL' 0.0 0.0;\n\x20 wire_delay 'CK' 0.0 0.0;\n\
         \x20 signal CS;\n\
         \x20 const0 () -> (CS);\n\
         \x20 and delay=1.0:2.9 (-'CK .P2-3 L' &H, -'WRITE .S0-6 L') -> (WE);\n\
         \x20 use '2 MUX 10173' SIZE=4 ('R/W SEL .P0-4', 'READ ADR .S4-9', \
         'WRITE ADR .S0-6') -> (ADR);\n\
         \x20 use '16W RAM 10145A' SIZE=32 (WE, CS, ADR, 'W DATA .S0-6') \
         -> ('RAM OUT');\n\
         \x20 use '2 OR 10105' SIZE=32 ('RAM OUT', 'BYPASS .S0-8') \
         -> ('READ BUS');\n\
         \x20 use 'REG 10176' SIZE=32 ('REG CLK .P0-2', 'READ BUS') \
         -> ('R OUT');\n\
         end;\n",
        component_library()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_example_compiles() {
        let expansion =
            scald_hdl::compile(&register_file_example()).expect("figure circuit must compile");
        let n = &expansion.netlist;
        // RAM (4 prims incl. checkers... ) + mux macro (2) + reg macro (2)
        // + or (1) + top-level and + const.
        assert!(n.prims().len() >= 10, "{}", n.prims().len());
        let names: Vec<String> = n
            .primitive_histogram()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.iter().any(|s| s == "SETUP RISE HOLD FALL CHK"));
        assert!(names.iter().any(|s| s == "MIN PULSE WIDTH"));
        // Vector symmetry: the 32-bit data path is one primitive wide.
        let ram_out = n.signal_by_name("RAM OUT").expect("RAM OUT exists");
        assert_eq!(n.signal(ram_out).width, 32);
    }
}
