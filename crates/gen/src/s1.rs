//! Synthetic S-1-Mark-IIA-like design generator.
//!
//! The thesis evaluates the Timing Verifier on a major portion of the
//! S-1 Mark IIA processor: 6357 MSI ECL chips represented by 8 282
//! primitives of 22 types (≈1.3 primitives per chip, average vector width
//! 6.5 bits), 33 152 signal value lists (§3.3.2, Tables 3-1..3-3). Those
//! schematics are not available, so this module generates a deterministic
//! synthetic design matched to the *published statistics*: the same
//! primitive vocabulary, comparable primitives-per-chip density and
//! vector widths, pipeline-register structure with set-up/hold and
//! pulse-width checkers, and two clock phases.
//!
//! The generator is seeded and reproducible; the Table 3-1/3-2/3-3
//! benchmarks report both the paper's numbers and the measured ones.

use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_rng::Rng;
use scald_wave::{DelayRange, Time};

/// Options for the synthetic design.
#[derive(Debug, Clone, Copy)]
pub struct S1Options {
    /// Target chip count (the thesis example: 6357).
    pub chips: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for S1Options {
    fn default() -> S1Options {
        S1Options {
            chips: 6357,
            seed: 0x5ca1d,
        }
    }
}

impl S1Options {
    /// A small smoke-test design (~60 chips).
    #[must_use]
    pub fn small() -> S1Options {
        S1Options {
            chips: 60,
            seed: 0x5ca1d,
        }
    }
}

/// Statistics of the generated design.
#[derive(Debug, Clone, Copy, Default)]
pub struct S1Stats {
    /// Chips the generated slices account for.
    pub chips: usize,
    /// Primitives emitted.
    pub prims: usize,
    /// Signals created.
    pub signals: usize,
}

/// Vector width distribution tuned so the average primitive width lands
/// near the thesis' 6.5 bits.
fn sample_width(rng: &mut Rng) -> u32 {
    match rng.range_u32(0, 100) {
        0..=24 => 1,
        25..=34 => 4,
        35..=54 => 8,
        55..=69 => 16,
        70..=89 => 32,
        _ => 36,
    }
}

/// Generates the synthetic design.
///
/// # Panics
///
/// Panics only on internal builder inconsistencies (a bug).
#[must_use]
pub fn s1_like_netlist(opts: S1Options) -> (Netlist, S1Stats) {
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut b = NetlistBuilder::new(Config::s1_example());
    let ns = Time::from_ns;

    // Two clock phases (§3.3: the instruction unit runs at 50 ns, the
    // execution unit at 25 ns, so phase B fires twice per 50 ns cycle).
    // Data changes early in the cycle (inputs asserted stable from unit
    // 2.5-3.5 on), clocks capture late (units 5.5-7), so a correctly
    // phased design verifies clean; the paper's evaluation design was a
    // live, mostly correct processor.
    let clk_a = b.signal("CLK A .P6-7").expect("valid");
    let clk_b = b.signal("CLK B .P6.5-7.5").expect("valid");
    let clocks = [clk_a, clk_b];

    // A pool of global control signals with stable assertions.
    let mut controls = Vec::new();
    for i in 0..24 {
        let lo = ["2", "2.5", "3"][i % 3];
        let c = b.signal(&format!("CTL {i} .S{lo}-8")).expect("valid");
        controls.push(c);
    }

    let mut chips = 0usize;
    let mut slice = 0usize;
    // The output register of the previous slice, chained forward to give
    // the design cross-slice depth.
    let mut prev_out: Option<SignalId> = None;

    while chips < opts.chips {
        slice += 1;
        let w = sample_width(&mut rng);
        let clk = *rng.choose(&clocks);
        let ctl = *rng.choose(&controls);
        let ctl2 = *rng.choose(&controls);
        let p = format!("S{slice}");
        match rng.range_u32(0, 10) {
            // Datapath slice: mux -> logic -> register, with checker.
            0..=3 => {
                let din = b.signal_vec(&format!("{p}/IN .S3-8"), w).expect("valid");
                let muxed = b.signal_vec(&format!("{p}/MUXED"), w).expect("valid");
                let logic = b.signal_vec(&format!("{p}/LOGIC"), w).expect("valid");
                let q = b.signal_vec(&format!("{p}/Q"), w).expect("valid");
                let alt: Conn = match prev_out {
                    Some(s) => {
                        // §4.2.3: a fictitious delay at least as long as
                        // the clock skew decorrelates the same-clock
                        // feed-forward path.
                        let pw = b.signal_width(s);
                        let piped = b.signal_vec(&format!("{p}/PIPE"), pw).expect("valid");
                        b.delay(
                            format!("{p}/PIPE CORR"),
                            DelayRange::from_ns(6.0, 6.0),
                            s,
                            piped,
                        );
                        piped.into()
                    }
                    None => din.into(),
                };
                b.mux2(
                    format!("{p}/MUX"),
                    DelayRange::from_ns(1.2, 3.3),
                    ctl,
                    din,
                    alt,
                    muxed,
                );
                b.chg(
                    format!("{p}/LOGIC"),
                    DelayRange::from_ns(1.5, 3.0),
                    [Conn::new(muxed), Conn::new(ctl2)],
                    logic,
                );
                b.reg(
                    format!("{p}/REG"),
                    DelayRange::from_ns(1.5, 4.5),
                    clk,
                    logic,
                    q,
                );
                b.setup_hold(format!("{p}/REG CHK"), ns(2.5), ns(1.5), logic, clk);
                prev_out = Some(q);
                chips += 3;
            }
            // Memory-like slice: SRHF + pulse checks + wide read path.
            4..=5 => {
                let adr = b.signal_vec(&format!("{p}/ADR .S3-8"), 4).expect("valid");
                let we = b.signal(&format!("{p}/WE")).expect("valid");
                let rdata = b.signal_vec(&format!("{p}/RDATA"), w).expect("valid");
                b.and2(
                    format!("{p}/WE GATE"),
                    DelayRange::from_ns(1.0, 2.9),
                    Conn::new(clk_a).with_directive("H"),
                    ctl,
                    we,
                );
                b.setup_rise_hold_fall(format!("{p}/ADR CHK"), ns(3.5), ns(1.0), adr, we);
                let _ = clk;
                b.min_pulse_width(format!("{p}/WE CHK"), ns(4.0), ns(3.0), we);
                let extra: Conn = match prev_out {
                    Some(s) => {
                        let pw = b.signal_width(s);
                        let piped = b.signal_vec(&format!("{p}/RPIPE"), pw).expect("valid");
                        b.delay(
                            format!("{p}/RPIPE CORR"),
                            DelayRange::from_ns(6.0, 6.0),
                            s,
                            piped,
                        );
                        piped.into()
                    }
                    None => adr.into(),
                };
                b.chg(
                    format!("{p}/READ"),
                    DelayRange::from_ns(3.0, 6.0),
                    [Conn::new(adr), Conn::new(we), extra],
                    rdata,
                );
                chips += 6;
            }
            // Control slice: scalar gate soup plus a latch.
            6..=7 => {
                let x = b.signal(&format!("{p}/X .S3-8")).expect("valid");
                let y = b.signal(&format!("{p}/Y")).expect("valid");
                let zz = b.signal(&format!("{p}/Z")).expect("valid");
                let nn = b.signal(&format!("{p}/NN")).expect("valid");
                let xo = b.signal(&format!("{p}/XO")).expect("valid");
                let nq = b.signal(&format!("{p}/NQ")).expect("valid");
                let bq = b.signal(&format!("{p}/BQ")).expect("valid");
                let lq = b.signal(&format!("{p}/LQ")).expect("valid");
                b.or2(format!("{p}/OR"), DelayRange::from_ns(1.0, 2.9), x, ctl, y);
                b.and2(
                    format!("{p}/AND"),
                    DelayRange::from_ns(1.0, 2.9),
                    y,
                    ctl2,
                    zz,
                );
                b.gate(
                    format!("{p}/NAND"),
                    scald_netlist::PrimKind::Nand,
                    DelayRange::from_ns(1.0, 2.9),
                    [Conn::new(zz), Conn::new(ctl)],
                    nn,
                );
                b.gate(
                    format!("{p}/XOR"),
                    scald_netlist::PrimKind::Xor,
                    DelayRange::from_ns(1.2, 3.1),
                    [Conn::new(nn), Conn::new(ctl2)],
                    xo,
                );
                b.not(format!("{p}/NOT"), DelayRange::from_ns(1.0, 2.0), xo, nq);
                b.buf(format!("{p}/BUF"), DelayRange::from_ns(0.8, 1.6), nq, bq);
                b.latch(
                    format!("{p}/LATCH"),
                    DelayRange::from_ns(1.0, 3.5),
                    clk,
                    bq,
                    lq,
                );
                chips += 5;
            }
            // Wide-select slice: 4/8-input multiplexer trees.
            8 => {
                let nsel = if rng.bool() { 4 } else { 8 };
                let sel = b.signal(&format!("{p}/SEL .S3-8")).expect("valid");
                let out = b.signal_vec(&format!("{p}/MOUT"), w).expect("valid");
                let mut inputs: Vec<Conn> = vec![sel.into()];
                for i in 0..nsel {
                    let d = b.signal_vec(&format!("{p}/MD{i} .S3-8"), w).expect("valid");
                    inputs.push(d.into());
                }
                b.prim(
                    format!("{p}/WMUX"),
                    scald_netlist::PrimKind::Mux { data: nsel },
                    DelayRange::from_ns(1.5, 4.0),
                    inputs,
                    Some(out),
                );
                chips += 1;
            }
            // Set/reset register slice with delay-matched feedback.
            _ => {
                let d = b.signal_vec(&format!("{p}/D .S3-8"), w).expect("valid");
                let set = b.signal(&format!("{p}/SET")).expect("valid");
                let rst = b.signal(&format!("{p}/RST")).expect("valid");
                let q = b.signal_vec(&format!("{p}/SRQ"), w).expect("valid");
                let fb = b.signal_vec(&format!("{p}/FB"), w).expect("valid");
                b.constant(format!("{p}/KS"), scald_logic::Value::Zero, set);
                b.constant(format!("{p}/KR"), scald_logic::Value::Zero, rst);
                if rng.bool() {
                    b.reg_sr(
                        format!("{p}/SR REG"),
                        DelayRange::from_ns(1.0, 3.8),
                        clk,
                        d,
                        set,
                        rst,
                        q,
                    );
                } else {
                    b.latch_sr(
                        format!("{p}/SR LATCH"),
                        DelayRange::from_ns(1.0, 3.5),
                        clk,
                        d,
                        set,
                        rst,
                        q,
                    );
                }
                b.delay(format!("{p}/CORR"), DelayRange::from_ns(4.0, 4.0), q, fb);
                prev_out = Some(fb);
                chips += 3;
            }
        }
    }

    let netlist = b.finish().expect("generated design is well-formed");
    let stats = S1Stats {
        chips,
        prims: netlist.prims().len(),
        signals: netlist.signals().len(),
    };
    (netlist, stats)
}

/// Generates an equivalent design as HDL source text, so the full
/// Table 3-1 pipeline (read, Pass 1, Pass 2, verify) can be measured
/// through the macro expander.
///
/// The design wraps the datapath slice in a parameterized macro and
/// instantiates it once per slice — exercising parameter binding, port
/// widths and directive propagation at scale.
#[must_use]
pub fn s1_like_hdl(opts: S1Options) -> String {
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut src = String::from(
        "design S1 LIKE;\nperiod 50.0;\nclock_unit 6.25;\nwire_delay 0.0 2.0;\n\n\
         macro 'DP SLICE' (SIZE=8) (CK, SEL, DIN<0:SIZE-1>/P, ALT<0:SIZE-1>/P) \
         -> (Q<0:SIZE-1>/P);\n\
         \x20 signal PIPED<0:SIZE-1>/M;\n\
         \x20 signal MUXED<0:SIZE-1>/M;\n\
         \x20 signal LOGIC<0:SIZE-1>/M;\n\
         \x20 -- the CORR fictitious delay of 4.2.3 decorrelates the\n\
         \x20 -- same-clock feed-forward path\n\
         \x20 delay delay=6.0:6.0 (ALT) -> (PIPED/M);\n\
         \x20 mux delay=1.2:3.3 (SEL, DIN, PIPED/M) -> (MUXED/M);\n\
         \x20 chg delay=1.5:3.0 (MUXED/M, SEL) -> (LOGIC/M);\n\
         \x20 reg delay=1.5:4.5 (CK, LOGIC/M) -> (Q);\n\
         \x20 setup_hold setup=2.5 hold=1.5 (LOGIC/M, CK);\n\
         end;\n\ntop;\n",
    );
    // Slices are sized so that the HDL chip density roughly matches the
    // builder-based generator (3 chips per slice).
    let slices = (opts.chips / 3).max(1);
    let mut prev: Option<(usize, u32)> = None;
    for i in 0..slices {
        let w = sample_width(&mut rng);
        let ctl = rng.range_u32(0, 24);
        let lo = ["2", "2.5", "3"][ctl as usize % 3];
        let (alt, altw) = match prev {
            Some((j, pw)) if pw == w => (format!("'S{j} Q'"), w),
            _ => (format!("'S{i} ALT .S1.5-8'"), w),
        };
        let _ = altw;
        src.push_str(&format!(
            "  use 'DP SLICE' SIZE={w} ('CLK A .P6-7', 'CTL {ctl} .S{lo}-8', \
             'S{i} IN .S3-8', {alt}) -> ('S{i} Q');\n"
        ));
        prev = Some((i, w));
    }
    src.push_str("end;\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_design_matches_target_statistics() {
        let (n, stats) = s1_like_netlist(S1Options::small());
        assert!(stats.chips >= 60);
        // Primitive density comparable to the thesis' 1.3 per chip.
        let density = stats.prims as f64 / stats.chips as f64;
        assert!(
            (0.8..=2.0).contains(&density),
            "primitive density {density} out of range"
        );
        // Average vector width near the thesis' 6.5 bits.
        let avg = n.average_primitive_width();
        assert!((3.0..=11.0).contains(&avg), "avg width {avg}");
        assert_eq!(stats.prims, n.prims().len());
    }

    #[test]
    fn generator_is_deterministic() {
        let (a, _) = s1_like_netlist(S1Options::small());
        let (b, _) = s1_like_netlist(S1Options::small());
        assert_eq!(a.prims().len(), b.prims().len());
        assert_eq!(a.signals().len(), b.signals().len());
        assert_eq!(a.primitive_histogram(), b.primitive_histogram());
    }

    #[test]
    fn primitive_vocabulary_is_rich() {
        let (n, _) = s1_like_netlist(S1Options {
            chips: 600,
            seed: 7,
        });
        let hist = n.primitive_histogram();
        assert!(
            hist.len() >= 10,
            "expected a rich primitive mix, got {hist:?}"
        );
    }

    #[test]
    fn hdl_variant_compiles() {
        let src = s1_like_hdl(S1Options { chips: 30, seed: 3 });
        let expansion = scald_hdl::compile(&src).expect("generated HDL must compile");
        assert!(expansion.netlist.prims().len() >= 40);
        assert_eq!(expansion.stats.instances_expanded, 10);
    }
}
