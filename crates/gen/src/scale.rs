//! Scale-sweep generator: synthetic designs from 10^3 to 10^6 primitives.
//!
//! [`crate::s1`] reproduces the published statistics of *one* design (the
//! 6357-chip S-1 Mark IIA evaluation). This module instead sweeps *size*,
//! with independent shape knobs, so the engine's hot path can be measured
//! against designs that stress it in different ways:
//!
//! * **`target_prims`** — generation stops once at least this many
//!   primitives exist, so a sweep can hit 1k/10k/100k/1M exactly where
//!   the thesis' single data point (8 282) sits in the middle.
//! * **`depth`** — the probability that a new slice *extends* an
//!   existing register chain instead of rooting a fresh one. High values
//!   make long pipelines (many settle waves, shallow per-wave
//!   parallelism); low values make wide forests (few waves, wide ones).
//! * **`fanout`** — [`Fanout::Hubs`] promotes a fraction of slice
//!   outputs to shared nets that later slices tap. Because every tap
//!   draws uniformly from the hubs alive *so far*, early hubs accumulate
//!   readers harmonically — a heavy-tailed fanout distribution like a
//!   real enable/select tree, exactly the shape that stresses a CSR
//!   fanout index.
//! * **`clocks`** — the number of staggered capture phases, for
//!   multi-clock variants (the S-1's instruction unit ran at 50 ns
//!   against a 25 ns execution unit, §3.3).
//!
//! Every knob is consumed through one seeded [`Rng`], so a `(knobs,
//! seed)` pair names a design reproducibly on any host.

use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_rng::Rng;
use scald_wave::{DelayRange, Time};

/// Fanout shape of the generated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Point-to-point: each slice reads only its own chain and the
    /// shared control pool.
    Narrow,
    /// A percentage of slice outputs become shared "hub" nets that later
    /// slices tap as extra inputs.
    Hubs {
        /// Percent (0..=100) of slice outputs promoted to hubs.
        percent: u32,
        /// Hub nets each subsequent slice taps.
        taps: u32,
    },
}

/// Options for the scale sweep generator.
#[derive(Debug, Clone, Copy)]
pub struct ScaleOptions {
    /// Stop generating once at least this many primitives exist.
    pub target_prims: usize,
    /// Probability (0.0..=1.0) that a slice extends an existing chain
    /// (depth) rather than rooting a new one (width).
    pub depth: f64,
    /// Fanout shape.
    pub fanout: Fanout,
    /// Number of staggered clock phases (at least 1).
    pub clocks: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl ScaleOptions {
    /// The default shape at a given size: moderately deep (expected
    /// chain length 4), heavy-tailed fanout, two clock phases.
    #[must_use]
    pub fn prims(target_prims: usize) -> ScaleOptions {
        ScaleOptions {
            target_prims,
            depth: 0.75,
            fanout: Fanout::Hubs {
                percent: 5,
                taps: 2,
            },
            clocks: 2,
            seed: 0x5ca1e,
        }
    }
}

/// Statistics of the generated design.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaleStats {
    /// Primitives emitted.
    pub prims: usize,
    /// Signals created.
    pub signals: usize,
    /// Register chains still open when generation stopped (width).
    pub chains: usize,
    /// Longest register chain, in slices (depth).
    pub max_depth: usize,
    /// Slice outputs promoted to shared hub nets.
    pub hubs: usize,
}

/// `t` tenths of a clock unit, printed the way assertions are written
/// ("6", "6.5") — no trailing zero decimals.
fn tenths(t: u32) -> String {
    if t.is_multiple_of(10) {
        format!("{}", t / 10)
    } else {
        format!("{}.{}", t / 10, t % 10)
    }
}

/// Vector width distribution: mostly narrow with a wide tail, averaging
/// near the thesis' 6.5 bits.
fn sample_width(rng: &mut Rng) -> u32 {
    match rng.range_u32(0, 100) {
        0..=29 => 1,
        30..=54 => 4,
        55..=79 => 8,
        80..=94 => 16,
        _ => 32,
    }
}

/// Generates a design of at least `opts.target_prims` primitives.
///
/// Every slice is the clean datapath cell the S-1 generator verifies
/// clean (stable-asserted inputs, late capture clocks, the §4.2.3
/// decorrelation delay on every registered feed-forward), so settle cost
/// measures the *engine*, not violation bookkeeping.
///
/// # Panics
///
/// Panics only on internal builder inconsistencies (a bug).
#[must_use]
pub fn scale_netlist(opts: &ScaleOptions) -> (Netlist, ScaleStats) {
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut b = NetlistBuilder::new(Config::s1_example());
    let ns = Time::from_ns;

    // Capture phases staggered across the late-cycle units 6.0..7.6
    // (clock_unit 6.25 ns, period 8 units): late enough that data
    // asserted stable from unit 3 meets setup, early enough that the
    // hold window ends before the assertions expire at unit 8.
    let k = opts.clocks.max(1);
    let clocks: Vec<SignalId> = (0..k)
        .map(|i| {
            let start = 60 + 2 * u32::try_from(i % 4).expect("fits");
            let name = format!("CLK{i} .P{}-{}", tenths(start), tenths(start + 10));
            b.signal(&name).expect("valid clock")
        })
        .collect();

    // Shared control pool with stable assertions (select/enable nets).
    let controls: Vec<SignalId> = (0..16)
        .map(|i| {
            let lo = ["2", "2.5", "3"][i % 3];
            b.signal(&format!("CTL {i} .S{lo}-8")).expect("valid")
        })
        .collect();

    let depth_pct = (opts.depth.clamp(0.0, 1.0) * 100.0) as u32;
    // Open chain tails: (tail signal, chain depth in slices).
    let mut frontier: Vec<(SignalId, usize)> = Vec::new();
    let mut hubs: Vec<SignalId> = Vec::new();
    let mut prims = 0usize;
    let mut slice = 0usize;
    let mut max_depth = 0usize;

    while prims < opts.target_prims {
        slice += 1;
        let p = format!("N{slice}");
        let clk = *rng.choose(&clocks);
        let ctl = *rng.choose(&controls);

        // Depth vs width: extend a random open chain, or root a new one.
        let extend = !frontier.is_empty() && rng.range_u32(0, 100) < depth_pct;
        let (din, depth, w): (Conn, usize, u32) = if extend {
            let idx = rng.range_u32(0, u32::try_from(frontier.len()).expect("fits")) as usize;
            let (tail, d) = frontier.swap_remove(idx);
            // §4.2.3: a fictitious delay at least as long as the clock
            // skew decorrelates the registered feed-forward path.
            let w = b.signal_width(tail);
            let piped = b.signal_vec(&format!("{p}/PIPE"), w).expect("valid");
            b.delay(
                format!("{p}/CORR"),
                DelayRange::from_ns(6.0, 6.0),
                tail,
                piped,
            );
            prims += 1;
            (piped.into(), d + 1, w)
        } else {
            let w = sample_width(&mut rng);
            let din = b.signal_vec(&format!("{p}/IN .S3-8"), w).expect("valid");
            (din.into(), 1, w)
        };

        // Heavy-tailed fanout: tap hub nets as extra combinational
        // inputs. Drawing uniformly from all hubs alive so far gives the
        // earliest hubs harmonically growing reader counts.
        let mut inputs: Vec<Conn> = vec![din, Conn::new(ctl)];
        if let Fanout::Hubs { taps, .. } = opts.fanout {
            for _ in 0..taps {
                if hubs.is_empty() {
                    break;
                }
                inputs.push(Conn::new(*rng.choose(&hubs)));
            }
        }

        let logic = b.signal_vec(&format!("{p}/LOGIC"), w).expect("valid");
        let q = b.signal_vec(&format!("{p}/Q"), w).expect("valid");
        b.chg(
            format!("{p}/LOGIC"),
            DelayRange::from_ns(1.5, 3.0),
            inputs,
            logic,
        );
        b.reg(
            format!("{p}/REG"),
            DelayRange::from_ns(1.5, 4.5),
            clk,
            logic,
            q,
        );
        b.setup_hold(format!("{p}/CHK"), ns(2.5), ns(1.5), logic, clk);
        prims += 3;
        max_depth = max_depth.max(depth);
        frontier.push((q, depth));

        if let Fanout::Hubs { percent, .. } = opts.fanout {
            if rng.range_u32(0, 100) < percent {
                // Hub taps are also registered feed-forward, so they get
                // the same decorrelation treatment — once per hub, not
                // per tap.
                let hub = b.signal_vec(&format!("{p}/HUB"), w).expect("valid");
                b.delay(
                    format!("{p}/HUB CORR"),
                    DelayRange::from_ns(6.0, 6.0),
                    q,
                    hub,
                );
                prims += 1;
                hubs.push(hub);
            }
        }
    }

    let netlist = b.finish().expect("generated design is well-formed");
    let stats = ScaleStats {
        prims: netlist.prims().len(),
        signals: netlist.signals().len(),
        chains: frontier.len(),
        max_depth,
        hubs: hubs.len(),
    };
    debug_assert_eq!(stats.prims, prims);
    (netlist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_the_primitive_target() {
        for target in [1_000usize, 5_000] {
            let (_, stats) = scale_netlist(&ScaleOptions::prims(target));
            assert!(stats.prims >= target, "{} < {target}", stats.prims);
            // Overshoot is bounded by one slice.
            assert!(stats.prims < target + 8, "{} overshoots", stats.prims);
        }
    }

    #[test]
    fn depth_knob_controls_chain_length() {
        let deep = scale_netlist(&ScaleOptions {
            depth: 0.95,
            ..ScaleOptions::prims(2_000)
        })
        .1;
        let wide = scale_netlist(&ScaleOptions {
            depth: 0.10,
            ..ScaleOptions::prims(2_000)
        })
        .1;
        assert!(
            deep.max_depth > 4 * wide.max_depth,
            "deep {} vs wide {}",
            deep.max_depth,
            wide.max_depth
        );
        assert!(
            wide.chains > 4 * deep.chains,
            "wide {} vs deep {}",
            wide.chains,
            deep.chains
        );
    }

    #[test]
    fn hub_fanout_is_heavy_tailed() {
        let (n, stats) = scale_netlist(&ScaleOptions {
            fanout: Fanout::Hubs {
                percent: 10,
                taps: 2,
            },
            ..ScaleOptions::prims(3_000)
        });
        assert!(stats.hubs > 0);
        let max_fanout = n
            .iter_signals()
            .map(|(id, _)| n.fanout(id).len())
            .max()
            .unwrap_or(0);
        // The most-read hub should dwarf the point-to-point norm of 2-3.
        assert!(max_fanout >= 10, "max fanout only {max_fanout}");
    }

    #[test]
    fn multi_clock_variants_settle_clean() {
        for clocks in [1usize, 3] {
            let (n, _) = scale_netlist(&ScaleOptions {
                clocks,
                ..ScaleOptions::prims(1_200)
            });
            let mut v = scald_verifier::Verifier::new(n);
            let outcome = v
                .run(&scald_verifier::RunOptions::new())
                .expect("settles")
                .into_sole();
            assert_eq!(
                outcome.violations.len(),
                0,
                "{clocks}-clock design must verify clean"
            );
        }
    }
}
