//! Seeded twin-design generator for cross-frontend equivalence testing.
//!
//! [`paired_design`] emits the *same* random synchronous circuit twice:
//! once as synthesisable Verilog for the `scald-rtl` frontend and once
//! as SCALD-style HDL for the macro expander. The two texts are built
//! from one abstract statement list so that both frontends produce
//! **structurally identical netlists** — the same signal names created
//! in the same order, the same primitive names with the same per-keyword
//! ordinals, the same connection lists — which in turn makes the
//! verifier's reports byte-identical. That property is what
//! `tests/cross_frontend.rs` locks down over many seeds.
//!
//! The circuits are scalar (1-bit) DAGs: a gated clock (`GCLK = CLK &
//! IN0`), a pool of combinational nets (`W1..`) built from gates,
//! inverters, buffers, CHANGE cones and multiplexers, a layer of
//! registers (`Q1..`) clocked by `CLK` or `GCLK` (about half with an
//! asynchronous reset to 0), and a buffered output. Timing comes from
//! explicit pragmas/headers with the repo's S-1-flavoured numbers, so
//! the generated designs stand alone.

use scald_rng::Rng;

/// One random circuit rendered for both frontends.
#[derive(Debug, Clone)]
pub struct PairedDesign {
    /// The synthesisable-Verilog rendering (`scald-rtl` frontend).
    pub verilog: String,
    /// The SCALD-style HDL rendering (macro-expander frontend).
    pub scald: String,
}

/// Assertion specs pinned onto the generated inputs.
const CLK_SPEC: &str = ".P0-4(0,0)";
const RST_SPEC: &str = ".S0-8";
const IN_SPEC: &str = ".S0-6";

/// A combinational statement, stored in netlist connection order.
enum Comb {
    /// `out = fold(op, args)` — n-ary gate; each arg may be inverted.
    Gate {
        op: GateOp,
        out: String,
        args: Vec<(String, bool)>,
    },
    /// `out = ~arg` (a NOT primitive, not an inverted connection).
    Not { out: String, arg: String },
    /// `out = arg` (a BUF primitive).
    Buf { out: String, arg: String },
    /// `out = a + b` — one CHANGE cone over the operands.
    Add { out: String, a: String, b: String },
    /// `out = sel ? then : els` — conns are `[sel, els, then]`.
    Mux {
        out: String,
        sel: String,
        els: String,
        then: String,
    },
}

#[derive(Clone, Copy)]
enum GateOp {
    And,
    Or,
    Xor,
}

impl GateOp {
    fn keyword(self) -> &'static str {
        match self {
            GateOp::And => "and",
            GateOp::Or => "or",
            GateOp::Xor => "xor",
        }
    }

    fn verilog(self) -> &'static str {
        match self {
            GateOp::And => "&",
            GateOp::Or => "|",
            GateOp::Xor => "^",
        }
    }
}

/// A register statement.
struct Reg {
    out: String,
    clock: String,
    data: String,
    /// `true`: asynchronous reset to 0 on `posedge RST`.
    reset: bool,
}

/// Generates the seeded twin pair. The same seed always yields the same
/// pair, on every platform.
#[must_use]
pub fn paired_design(seed: u64) -> PairedDesign {
    let mut rng = Rng::seed_from_u64(seed);
    let n_inputs = rng.range_usize(3, 7);
    let n_comb = rng.range_usize(4, 11);
    let n_regs = rng.range_usize(2, 6);

    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("IN{i}")).collect();

    // The data DAG: operands are drawn from the inputs and every
    // already-driven W net, so references always hit existing signals.
    let mut pool: Vec<String> = inputs.clone();
    let mut combs: Vec<Comb> = Vec::new();
    for i in 1..=n_comb {
        let out = format!("W{i}");
        let comb = match rng.range_u32(0, 7) {
            0 | 1 => {
                let op = *rng.choose(&[GateOp::And, GateOp::Or, GateOp::Xor]);
                let n_args = rng.range_usize(2, 4);
                let args = (0..n_args)
                    .map(|_| (rng.choose(&pool).clone(), rng.bool_with(0.25)))
                    .collect();
                Comb::Gate {
                    op,
                    out: out.clone(),
                    args,
                }
            }
            2 => Comb::Not {
                out: out.clone(),
                arg: rng.choose(&pool).clone(),
            },
            3 => Comb::Buf {
                out: out.clone(),
                arg: rng.choose(&pool).clone(),
            },
            4 | 5 => Comb::Add {
                out: out.clone(),
                a: rng.choose(&pool).clone(),
                b: rng.choose(&pool).clone(),
            },
            _ => Comb::Mux {
                out: out.clone(),
                sel: rng.choose(&pool).clone(),
                els: rng.choose(&pool).clone(),
                then: rng.choose(&pool).clone(),
            },
        };
        combs.push(comb);
        pool.push(out);
    }

    // Registers clock an already-driven W net on CLK or the gated clock.
    let wnets: Vec<String> = (1..=n_comb).map(|i| format!("W{i}")).collect();
    let regs: Vec<Reg> = (1..=n_regs)
        .map(|i| Reg {
            out: format!("Q{i}"),
            clock: if rng.bool() { "GCLK" } else { "CLK" }.to_owned(),
            data: rng.choose(&wnets).clone(),
            reset: rng.bool(),
        })
        .collect();
    let out_net = rng.choose(&wnets).clone();

    PairedDesign {
        verilog: render_verilog(&inputs, &combs, &regs, &out_net),
        scald: render_scald(&inputs, &combs, &regs, &out_net),
    }
}

/// Renders the Verilog half.
fn render_verilog(inputs: &[String], combs: &[Comb], regs: &[Reg], out_net: &str) -> String {
    use std::fmt::Write as _;
    let mut v = String::new();
    v.push_str("// scald: period 50.0\n");
    v.push_str("// scald: clock_unit 6.25\n");
    v.push_str("// scald: wire_delay 0.0 2.0\n");
    v.push_str("module pair(input wire CLK, input wire RST");
    for name in inputs {
        let _ = write!(v, ", input wire {name}");
    }
    v.push_str(", output wire OUT);\n");
    let _ = writeln!(v, "  // scald: input CLK {CLK_SPEC}");
    let _ = writeln!(v, "  // scald: input RST {RST_SPEC}");
    for name in inputs {
        let _ = writeln!(v, "  // scald: input {name} {IN_SPEC}");
    }
    v.push_str("  // scald: ff delay=1.5:4.5 setup=2.5 hold=1.5\n");
    v.push_str("  // scald: comb delay=1.0:3.0\n");
    v.push_str("  wire GCLK;\n");
    for comb in combs {
        let _ = writeln!(v, "  wire {};", comb_out(comb));
    }
    for reg in regs {
        let _ = writeln!(v, "  reg {};", reg.out);
    }
    let _ = writeln!(v, "  assign GCLK = CLK & {};", inputs[0]);
    for comb in combs {
        let line = match comb {
            Comb::Gate { op, out, args } => {
                let rhs: Vec<String> = args
                    .iter()
                    .map(|(name, inv)| {
                        if *inv {
                            format!("~{name}")
                        } else {
                            name.clone()
                        }
                    })
                    .collect();
                format!(
                    "assign {out} = {};",
                    rhs.join(&format!(" {} ", op.verilog()))
                )
            }
            Comb::Not { out, arg } => format!("assign {out} = ~{arg};"),
            Comb::Buf { out, arg } => format!("assign {out} = {arg};"),
            Comb::Add { out, a, b } => format!("assign {out} = {a} + {b};"),
            Comb::Mux {
                out,
                sel,
                els,
                then,
            } => format!("assign {out} = {sel} ? {then} : {els};"),
        };
        let _ = writeln!(v, "  {line}");
    }
    for reg in regs {
        if reg.reset {
            let _ = writeln!(
                v,
                "  always_ff @(posedge {} or posedge RST) begin\n    \
                 if (RST) {} <= 1'b0;\n    else {} <= {};\n  end",
                reg.clock, reg.out, reg.out, reg.data
            );
        } else {
            let _ = writeln!(
                v,
                "  always_ff @(posedge {}) {} <= {};",
                reg.clock, reg.out, reg.data
            );
        }
    }
    let _ = writeln!(v, "  assign OUT = {out_net};");
    v.push_str("endmodule\n");
    v
}

/// Renders the SCALD-HDL twin. References to asserted inputs always
/// carry their assertion suffix so both frontends create identical
/// signal names.
fn render_scald(inputs: &[String], combs: &[Comb], regs: &[Reg], out_net: &str) -> String {
    use std::fmt::Write as _;
    let named = |name: &str| -> String {
        if name == "CLK" {
            format!("'CLK {CLK_SPEC}'")
        } else if name == "RST" {
            format!("'RST {RST_SPEC}'")
        } else if inputs.iter().any(|i| i == name) {
            format!("'{name} {IN_SPEC}'")
        } else {
            name.to_owned()
        }
    };
    let mut s = String::new();
    s.push_str("design PAIR;\n");
    s.push_str("period 50.0;\n");
    s.push_str("clock_unit 6.25;\n");
    s.push_str("wire_delay 0.0 2.0;\n");
    s.push_str("precision_skew 1.0 1.0;\n");
    s.push_str("clock_skew 5.0 5.0;\n");
    s.push_str("\ntop;\n");
    let _ = writeln!(
        s,
        "  and delay=1.0:3.0 ({}, {}) -> (GCLK);",
        named("CLK"),
        named(&inputs[0])
    );
    for comb in combs {
        let line = match comb {
            Comb::Gate { op, out, args } => {
                let conns: Vec<String> = args
                    .iter()
                    .map(|(name, inv)| {
                        let n = named(name);
                        if *inv {
                            format!("-{n}")
                        } else {
                            n
                        }
                    })
                    .collect();
                format!(
                    "{} delay=1.0:3.0 ({}) -> ({out});",
                    op.keyword(),
                    conns.join(", ")
                )
            }
            Comb::Not { out, arg } => {
                format!("not delay=1.0:3.0 ({}) -> ({out});", named(arg))
            }
            Comb::Buf { out, arg } => {
                format!("buf delay=1.0:3.0 ({}) -> ({out});", named(arg))
            }
            Comb::Add { out, a, b } => {
                format!("chg delay=1.0:3.0 ({}, {}) -> ({out});", named(a), named(b))
            }
            Comb::Mux {
                out,
                sel,
                els,
                then,
            } => format!(
                "mux delay=1.0:3.0 ({}, {}, {}) -> ({out});",
                named(sel),
                named(els),
                named(then)
            ),
        };
        let _ = writeln!(s, "  {line}");
    }
    // The RTL frontend creates the shared ground net lazily, right
    // before the first reset register; the twin places the `const0`
    // statement at exactly that point.
    let mut gnd_emitted = false;
    for reg in regs {
        if reg.reset {
            if !gnd_emitted {
                s.push_str("  const0 () -> ('GND#0');\n");
                gnd_emitted = true;
            }
            let _ = writeln!(
                s,
                "  reg_sr delay=1.5:4.5 ({}, {}, 'GND#0', {}) -> ({});",
                named(&reg.clock),
                named(&reg.data),
                named("RST"),
                reg.out
            );
        } else {
            let _ = writeln!(
                s,
                "  reg delay=1.5:4.5 ({}, {}) -> ({});",
                named(&reg.clock),
                named(&reg.data),
                reg.out
            );
        }
        let _ = writeln!(
            s,
            "  setup_hold setup=2.5 hold=1.5 ({}, {});",
            named(&reg.data),
            named(&reg.clock)
        );
    }
    let _ = writeln!(s, "  buf delay=1.0:3.0 ({}) -> (OUT);", named(out_net));
    s.push_str("end;\n");
    s
}

fn comb_out(comb: &Comb) -> &str {
    match comb {
        Comb::Gate { out, .. }
        | Comb::Not { out, .. }
        | Comb::Buf { out, .. }
        | Comb::Add { out, .. }
        | Comb::Mux { out, .. } => out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = paired_design(42);
        let b = paired_design(42);
        assert_eq!(a.verilog, b.verilog);
        assert_eq!(a.scald, b.scald);
        let c = paired_design(43);
        assert_ne!(a.verilog, c.verilog);
    }

    #[test]
    fn both_renderings_mention_the_same_registers() {
        let pair = paired_design(7);
        for line in pair.verilog.lines() {
            if let Some(rest) = line.trim().strip_prefix("reg ") {
                let name = rest.trim_end_matches(';');
                assert!(
                    pair.scald.contains(&format!("({name})")),
                    "register {name} missing from the SCALD twin:\n{}",
                    pair.scald
                );
            }
        }
    }
}
