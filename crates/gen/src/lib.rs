//! Workload generators for the SCALD Timing Verifier reproduction.
//!
//! Three families:
//!
//! * [`figures`] — the thesis' example circuits (the Fig 1-5 gated-clock
//!   hazard, the Fig 2-5 register file, the Fig 2-6 case-analysis
//!   circuit, the Fig 3-12 ALU pipeline stage, and the Fig 4-1/4-2
//!   correlation circuit), built with the data-sheet timing values the
//!   thesis quotes.
//! * [`hdl_sources`] — the same component library as SCALD HDL text
//!   (Figs 3-5..3-9), exercising the macro expander.
//! * [`ablation`] — the bit-blast transform that undoes the vector-width
//!   symmetry, so the §3.3.2 saving can be measured.
//! * [`rtl_pairs`] — seeded *twin* designs rendered both as
//!   synthesisable Verilog and as SCALD HDL, used to property-test that
//!   the two frontends lower to identical netlists and byte-identical
//!   reports.
//! * [`s1`] — a seeded synthetic generator matched to the published
//!   statistics of the S-1 Mark IIA evaluation design (6357 chips, 8 282
//!   primitives, ≈1.3 primitives/chip, ≈6.5-bit average width), used to
//!   regenerate Tables 3-1, 3-2 and 3-3.
//! * [`scale`] — a size-sweep generator (10^3..10^6 primitives) with
//!   independent depth, fanout and clock-count knobs, used by the
//!   `BENCH_scale.json` scale sweep.
//! * [`sweep`] — a mode-sweep generator whose exhaustive case sweeps
//!   share long assignment prefixes (one heavy master mode bit, many
//!   light block bits), used by the `BENCH_cases.json` case-tree
//!   benchmark.

#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod hdl_sources;
pub mod rtl_pairs;
pub mod s1;
pub mod scale;
pub mod sweep;

/// Deterministic std-only PRNG used by the generators (re-exported from
/// [`scald_rng`] so workloads and tests share one implementation). The
/// repo builds offline: no external `rand` dependency.
pub mod prng {
    pub use scald_rng::{Rng, SplitMix64};
}
