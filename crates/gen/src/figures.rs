//! The thesis' figure circuits, built programmatically.
//!
//! Each constructor returns a validated [`Netlist`] shaped like the
//! corresponding figure, with the timing parameters the thesis quotes
//! (manufacturer data-sheet values for the register-file chip, the §3.2
//! design rules: 50 ns cycle, 6.25 ns clock units, 0.0/2.0 ns default
//! wires, ±1 ns precision-clock skew).

use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

/// Fig 1-5: a register clock gated by a too-late enable.
///
/// `CLOCK` is high 20–30 ns; `ENABLE` wants to inhibit the gate but does
/// not reach zero until 25 ns, so `REG CLOCK` can carry a spurious pulse
/// up to 5 ns wide. With `with_directive = true` the clock input carries
/// the `&A` check (reporting the control hazard); without it, the
/// min-pulse-width checker flags the runt pulse itself.
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn hazard_circuit(with_directive: bool) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clock = b.signal("CLOCK .P3.2-4.8 (0,0)").expect("valid name");
    let disable = b.signal("DISABLE .P3.2-4.8 (0,0)").expect("valid name");
    let enable = b.signal("ENABLE").expect("valid name");
    let regck = b.signal("REG CLOCK").expect("valid name");
    let d = b.signal_vec("D IN .S0-2", 8).expect("valid name");
    let q = b.signal_vec("Q", 8).expect("valid name");
    b.not(
        "ENABLE GATE",
        DelayRange::from_ns(0.0, 5.0),
        z(disable),
        enable,
    );
    let clock_conn = if with_directive {
        z(clock).with_directive("A")
    } else {
        z(clock)
    };
    b.and2("CLOCK GATE", DelayRange::ZERO, clock_conn, z(enable), regck);
    b.min_pulse_width("REG CLOCK WIDTH", ns(4.0), ns(0.0), z(regck));
    b.reg("REG", DelayRange::from_ns(1.5, 4.5), z(regck), z(d), q);
    b.finish().expect("hazard circuit is well-formed")
}

/// Handles into the Fig 2-5 register-file circuit.
#[derive(Debug, Clone, Copy)]
pub struct RegisterFileSignals {
    /// The write-enable pulse at the RAM.
    pub we: SignalId,
    /// The multiplexed address lines (`ADR<0:3>`).
    pub adr: SignalId,
    /// The RAM read data.
    pub ram_out: SignalId,
    /// The read bus into the output register.
    pub read_bus: SignalId,
    /// The registered output (`R OUT`).
    pub r_out: SignalId,
}

/// Fig 2-5 (§3.2): the 16-word × 32-bit register-file circuit with an
/// output register, an address multiplexer and a gated write-enable.
///
/// Timing parameters follow the Fairchild F10145A data sheet as the
/// thesis encodes it in Fig 3-5: write-data set-up 4.5 ns / hold −1.0 ns
/// against the falling write-enable, address set-up 3.5 ns / hold 1.0 ns
/// with stability while the enable is true, minimum enable width 4.0 ns,
/// read path 3.0/6.0 ns. The designer-specified 0.0–6.0 ns address wire
/// (§3.2) is applied to `ADR`.
///
/// Verifying this netlist reproduces the two error groups of Fig 3-11:
/// the address set-up missed by the full 3.5 ns, and the output-register
/// set-up missed by ≈1 ns.
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn register_file_circuit() -> (Netlist, RegisterFileSignals) {
    let mut b = NetlistBuilder::new(Config::s1_example());

    // Clocks and controls. `CK` is asserted (low) units 2-3; the `&H`
    // directive de-references its timing to the gate output and checks
    // WRITE is stable while it is asserted.
    let ck = b.signal("CK .P2-3 L").expect("valid name");
    let write = b.signal("WRITE .S0-6 L").expect("valid name");
    let we = b.signal("WE").expect("valid name");
    b.and2(
        "WE GATE",
        DelayRange::from_ns(1.0, 2.9),
        Conn::new(ck).inverted().with_directive("H"),
        Conn::new(write).inverted(),
        we,
    );
    b.min_pulse_width("WE WIDTH CHK", ns(4.0), ns(0.0), we);

    // Address multiplexer between read and write addresses. The select
    // is a phase signal derived from the clock (high during the write
    // half of the cycle), so the verifier knows its value and the address
    // bus simply alternates between the two (stable) address sources,
    // with changing windows around the phase edges — the Fig 3-10 trace.
    let sel = b.signal("R/W SEL .P0-4").expect("valid name");
    // Clock-class signals are distributed through the de-skewed clock
    // tree; their skew assertion already covers distribution variation
    // (§2.5.1), so no additional wire delay applies.
    b.set_wire_delay(sel, DelayRange::ZERO);
    b.set_wire_delay(ck, DelayRange::ZERO);
    let radr = b.signal_vec("READ ADR .S4-9", 4).expect("valid name");
    let wadr = b.signal_vec("WRITE ADR .S0-6", 4).expect("valid name");
    let adr = b.signal_vec("ADR", 4).expect("valid name");
    b.mux2(
        "ADR MUX",
        DelayRange::from_ns(1.2, 3.3),
        sel,
        radr,
        wadr,
        adr,
    );
    // The designer-specified address interconnection delay (§3.2).
    b.set_wire_delay(adr, DelayRange::from_ns(0.0, 6.0));

    // The RAM's data-sheet checks (Fig 3-5).
    let wdata = b.signal_vec("W DATA .S0-6", 32).expect("valid name");
    b.setup_hold(
        "RAM I CHK",
        ns(4.5),
        ns(-1.0),
        wdata,
        Conn::new(we).inverted(), // set-up against the falling WE edge
    );
    b.setup_rise_hold_fall("RAM ADR CHK", ns(3.5), ns(1.0), adr, we);

    // Read path: the output changes when the address or the write-enable
    // change (the `3 CHG` of Fig 3-5; chip select is tied active).
    let cs = b.signal("CS").expect("valid name");
    b.constant("CS TIE", scald_logic::Value::Zero, cs);
    let ram_out = b.signal_vec("RAM OUT", 32).expect("valid name");
    b.chg(
        "RAM READ",
        DelayRange::from_ns(3.0, 6.0),
        [Conn::new(adr), Conn::new(we), Conn::new(cs)],
        ram_out,
    );

    // "Several gates" onto the read bus, then the output register.
    let bypass = b.signal_vec("BYPASS .S0-8", 32).expect("valid name");
    let read_bus = b.signal_vec("READ BUS", 32).expect("valid name");
    b.or2(
        "BUS OR",
        DelayRange::from_ns(1.0, 2.9),
        ram_out,
        bypass,
        read_bus,
    );

    let regclk = b.signal("REG CLK .P0-2").expect("valid name");
    b.set_wire_delay(regclk, DelayRange::ZERO);
    let r_out = b.signal_vec("R OUT", 32).expect("valid name");
    b.reg(
        "OUT REG",
        DelayRange::from_ns(1.5, 4.5),
        regclk,
        read_bus,
        r_out,
    );
    b.setup_hold("OUT REG CHK", ns(2.5), ns(1.5), read_bus, regclk);

    let handles = RegisterFileSignals {
        we,
        adr,
        ram_out,
        read_bus,
        r_out,
    };
    (
        b.finish().expect("register file circuit is well-formed"),
        handles,
    )
}

/// Fig 2-6: the case-analysis circuit — two multiplexers with
/// complementary selects around 10/20 ns paths.
///
/// Without case analysis the `CONTROL SIGNAL` select is merely `S` and the
/// verifier sees a phantom 40 ns path; splitting into the two cases of
/// §2.7.1 recovers the true 30 ns delay. Returns the netlist and
/// `(input, control, output)` signal ids.
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn case_analysis_circuit() -> (Netlist, (SignalId, SignalId, SignalId)) {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let input = b.signal("INPUT .S0-4").expect("valid name");
    let ctrl = b.signal("CONTROL SIGNAL .S0-8").expect("valid name");
    let d10 = b.signal("PATH 10").expect("valid name");
    let d20 = b.signal("PATH 20").expect("valid name");
    let m1 = b.signal("MUX1 OUT").expect("valid name");
    let m1d10 = b.signal("MUX1 PATH 10").expect("valid name");
    let m1d20 = b.signal("MUX1 PATH 20").expect("valid name");
    let output = b.signal("OUTPUT").expect("valid name");
    b.delay("D10", DelayRange::from_ns(10.0, 10.0), z(input), d10);
    b.delay("D20", DelayRange::from_ns(20.0, 20.0), z(input), d20);
    b.mux2("MUX1", DelayRange::ZERO, z(ctrl), z(d10), z(d20), m1);
    b.delay("D10B", DelayRange::from_ns(10.0, 10.0), z(m1), m1d10);
    b.delay("D20B", DelayRange::from_ns(20.0, 20.0), z(m1), m1d20);
    b.mux2(
        "MUX2",
        DelayRange::ZERO,
        z(ctrl).inverted(),
        z(m1d10),
        z(m1d20),
        output,
    );
    (
        b.finish().expect("case circuit is well-formed"),
        (input, ctrl, output),
    )
}

/// Fig 3-12: a typical S-1 Mark IIA arithmetic pipeline stage — a 36-bit
/// ALU with output latch, a function decoder on its select lines, and a
/// 36-bit debugging/status register with a load enable.
///
/// All interface signals carry assertions, so the stage can be verified in
/// isolation (§2.5.2). Returns the netlist and the latched ALU output id.
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn alu_stage() -> (Netlist, SignalId) {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let a = b.signal_vec("A BUS .S2.5-7.5", 36).expect("valid name");
    let bb = b.signal_vec("B BUS .S2.5-7.5", 36).expect("valid name");
    let c1 = b.signal("CARRY IN .S2.5-7.5").expect("valid name");
    let func = b.signal_vec("FUNC CODE .S2-7", 4).expect("valid name");

    // Function decoder: complex combinational logic modelled with CHG.
    let s = b.signal_vec("ALU SELECT", 4).expect("valid name");
    b.chg(
        "FUNC DECODER",
        DelayRange::from_ns(2.0, 4.0),
        [Conn::new(func)],
        s,
    );

    // The ALU data path (Fig 3-9 models it as a group of CHG gates).
    let alu = b.signal_vec("ALU OUT", 36).expect("valid name");
    b.chg(
        "ALU",
        DelayRange::from_ns(5.0, 11.0),
        [Conn::new(a), Conn::new(bb), Conn::new(c1), Conn::new(s)],
        alu,
    );

    // Output latch, open units 5-6.
    let lat_en = b.signal("ALU LATCH EN .P5-6").expect("valid name");
    let latched = b.signal_vec("ALU LATCHED", 36).expect("valid name");
    b.latch(
        "ALU LATCH",
        DelayRange::from_ns(1.0, 3.5),
        lat_en,
        alu,
        latched,
    );
    b.setup_hold(
        "ALU LATCH CHK",
        ns(2.0),
        ns(1.0),
        alu,
        Conn::new(lat_en).inverted(),
    );

    // Debugging/status register with load enable gated onto its clock.
    let stat_clk = b.signal("STATUS CLK .P7-8").expect("valid name");
    let load_en = b.signal("LOAD STATUS .S6.5-13.5").expect("valid name");
    let gated = b.signal("STATUS REG CLK").expect("valid name");
    b.and2(
        "STATUS CLK GATE",
        DelayRange::from_ns(1.0, 2.9),
        Conn::new(stat_clk).with_directive("H"),
        load_en,
        gated,
    );
    let status = b.signal_vec("STATUS REG", 36).expect("valid name");
    b.reg(
        "STATUS",
        DelayRange::from_ns(1.5, 4.5),
        gated,
        latched,
        status,
    );
    b.setup_hold("STATUS CHK", ns(2.5), ns(1.5), latched, gated);

    (b.finish().expect("ALU stage is well-formed"), latched)
}

/// Figs 4-1/4-2: the correlation circuit — a register reloading itself
/// through a multiplexer, with a clock buffer that inserts a large skew.
///
/// The minimum register + multiplexer delay exceeds the hold time, so the
/// real hardware is safe; but the verifier reasons in absolute times and
/// reports a **false** hold error (Fig 4-1). Passing
/// `with_corr_delay = true` inserts the `CORR` fictitious delay of §4.2.3
/// into the feedback path, suppressing the false error (Fig 4-2).
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn correlation_circuit(with_corr_delay: bool) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let ck = b.signal("CK .P0-1 (0,0)").expect("valid name");
    let ckb = b.signal("CK BUFFERED").expect("valid name");
    // The clock buffer inserts 0..4 ns of skew.
    b.buf("CK BUF", DelayRange::from_ns(0.0, 4.0), z(ck), ckb);

    let sel = b.signal("RELOAD SEL .S0-8").expect("valid name");
    let newd = b.signal_vec("NEW DATA .S6-10", 16).expect("valid name");
    let q = b.signal_vec("Q", 16).expect("valid name");
    let m = b.signal_vec("REG IN", 16).expect("valid name");

    let feedback: Conn = if with_corr_delay {
        let fb = b.signal_vec("Q CORR", 16).expect("valid name");
        // CORR: a fictitious delay at least as long as the clock skew.
        b.delay("CORR", DelayRange::from_ns(4.0, 4.0), z(q), fb);
        z(fb)
    } else {
        z(q)
    };
    b.mux2(
        "RELOAD MUX",
        DelayRange::from_ns(1.2, 3.3),
        z(sel),
        feedback,
        z(newd),
        m,
    );
    b.reg(
        "FEEDBACK REG",
        DelayRange::from_ns(1.0, 3.8),
        z(ckb),
        z(m),
        q,
    );
    b.setup_hold("FEEDBACK CHK", ns(2.5), ns(1.5), z(m), z(ckb));
    b.finish().expect("correlation circuit is well-formed")
}

/// Fig 1-3: a set-reset latch built from two cross-coupled NOR gates —
/// the thesis' example of an *asynchronous* sequential circuit, which the
/// verification approach explicitly does not cover (§1.2.4: "analysis of
/// the timing of asynchronous circuits requires full functional
/// verification, which is beyond the scope of this thesis").
///
/// The verifier still *terminates* on it: the feedback loop settles at
/// conservative values (or is reported as an oscillation), rather than
/// hanging — the engineering requirement §2.9's fixed point must meet.
///
/// # Panics
///
/// Panics only if the internal builder is inconsistent (a bug).
#[must_use]
pub fn sr_latch() -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let set = b.signal("SET .S2-8").expect("valid name");
    let reset = b.signal("RESET .S2-8").expect("valid name");
    let a = b.signal("A").expect("valid name");
    let q = b.signal("B").expect("valid name");
    b.gate(
        "NOR1",
        scald_netlist::PrimKind::Nor,
        DelayRange::from_ns(1.0, 2.9),
        [z(set), z(q)],
        a,
    );
    b.gate(
        "NOR2",
        scald_netlist::PrimKind::Nor,
        DelayRange::from_ns(1.0, 2.9),
        [z(reset), z(a)],
        q,
    );
    b.finish().expect("SR latch is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_circuits_validate() {
        let _ = hazard_circuit(true);
        let _ = hazard_circuit(false);
        let (n, _) = register_file_circuit();
        assert!(n.prims().len() >= 7);
        let _ = case_analysis_circuit();
        let (alu, _) = alu_stage();
        assert!(alu.prims().len() >= 7);
        let _ = correlation_circuit(true);
        let _ = correlation_circuit(false);
    }

    #[test]
    fn sr_latch_terminates() {
        use scald_netlist::PrimKind;
        let n = sr_latch();
        assert!(n.prims().iter().all(|p| matches!(p.kind, PrimKind::Nor)));
        // Termination (not verdicts) is the contract for asynchronous
        // feedback; the verifier crate's tests drive it.
    }

    #[test]
    fn register_file_has_data_sheet_checkers() {
        let (n, _) = register_file_circuit();
        let hist = n.primitive_histogram();
        let names: Vec<&str> = hist.iter().map(|(s, _)| s.as_str()).collect();
        assert!(names.contains(&"SETUP HOLD CHK"));
        assert!(names.contains(&"SETUP RISE HOLD FALL CHK"));
        assert!(names.contains(&"MIN PULSE WIDTH"));
        assert!(names.contains(&"3 CHG"));
        assert!(names.contains(&"2 MUX"));
    }
}
