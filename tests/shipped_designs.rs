//! The design files shipped under `designs/` must stay compilable and
//! produce the documented verdicts — they are the CLI's demo inputs.

use scald::hdl::compile;
use scald::verifier::{RunOptions, Verifier, ViolationKind};

#[test]
fn shipped_register_file_design_compiles_and_verifies() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/designs/register_file.scald"
    ))
    .expect("shipped design file exists");
    let expansion = compile(&src).expect("shipped design compiles");
    assert!(expansion.stats.instances_expanded >= 4);
    let mut v = Verifier::new(expansion.netlist);
    let r = v
        .run(&RunOptions::new())
        .expect("design settles")
        .into_sole();
    // The demo file reproduces the Fig 3-11 class of errors: at least the
    // RAM address set-up and the output-register set-up.
    let setups = r.of_kind(ViolationKind::Setup);
    assert!(
        setups.len() >= 2,
        "expected the documented setup errors: {r}"
    );
    assert!(setups.iter().any(|x| x.source.contains("RAM")));
    assert!(setups.iter().any(|x| x.source.contains("REG 10176")));
}

#[test]
fn printer_normalizes_shipped_design() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/designs/register_file.scald"
    ))
    .expect("shipped design file exists");
    let design = scald::hdl::parse(&src).expect("parses");
    let printed = scald::hdl::print(&design);
    let reparsed = scald::hdl::parse(&printed).expect("printed text parses");
    let a = scald::hdl::expand(&design).expect("expands");
    let b = scald::hdl::expand(&reparsed).expect("round-trip expands");
    assert_eq!(a.netlist.prims().len(), b.netlist.prims().len());
    assert_eq!(
        a.netlist.primitive_histogram(),
        b.netlist.primitive_histogram()
    );
}

#[test]
fn shipped_mini_cpu_verifies_clean_in_both_cases() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/designs/mini_cpu.scald"
    ))
    .expect("shipped design file exists");
    let expansion = compile(&src).expect("mini CPU compiles");
    assert_eq!(expansion.cases.len(), 2);
    let cases: Vec<scald::verifier::Case> = expansion
        .cases
        .iter()
        .map(|assigns| {
            assigns
                .iter()
                .fold(scald::verifier::Case::new(), |c, (s, v)| {
                    c.assign(s.clone(), *v)
                })
        })
        .collect();
    let mut v = Verifier::new(expansion.netlist);
    let results = v
        .run(&RunOptions::new().cases(scald::verifier::CaseSet::list(cases.iter().cloned())))
        .expect("design settles")
        .cases;
    for r in &results {
        assert!(r.is_clean(), "{r}");
    }
    // The design exercises the whole feature set: wired-OR bus, &H gating,
    // asymmetric inverter, latch, and case analysis.
    assert!(results[1].evaluations < results[0].evaluations);
}

#[test]
fn shipped_case_analysis_design() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/designs/case_analysis.scald"
    ))
    .expect("shipped design file exists");
    let expansion = compile(&src).expect("compiles");
    let cases: Vec<scald::verifier::Case> = expansion
        .cases
        .iter()
        .map(|assigns| {
            assigns
                .iter()
                .fold(scald::verifier::Case::new(), |c, (s, v)| {
                    c.assign(s.clone(), *v)
                })
        })
        .collect();
    // With cases: clean. Without: the phantom 40 ns path violates.
    let mut v = Verifier::new(expansion.netlist.clone());
    for r in v
        .run(&RunOptions::new().cases(scald::verifier::CaseSet::list(cases.iter().cloned())))
        .expect("settles")
        .cases
    {
        assert!(r.is_clean(), "{r}");
    }
    let mut v = Verifier::new(expansion.netlist);
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    assert!(!r.is_clean());
}
