//! End-to-end tests of the `scald-tv` binary: the documented exit codes
//! (0 = clean, 1 = violations, 2 = usage/compile error) and the golden
//! shape of the `--format json` document, validated with the workspace's
//! own parser and cross-checked against a library run of the same design.

use scald::trace::json::{parse, Json};
use scald::verifier::{RunOptions, Verifier, REPORT_SCHEMA, REPORT_VERSION};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_scald-tv");

fn design(name: &str) -> String {
    format!("{}/designs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("scald-tv binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("process not killed by signal")
}

#[test]
fn clean_design_exits_zero() {
    let out = run(&[&design("mini_cpu.scald")]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", text(&out.stderr));
    assert!(text(&out.stdout).contains("no timing errors."));
}

#[test]
fn violating_design_exits_one() {
    let out = run(&[&design("register_file.scald")]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("SETUP TIME VIOLATED"), "{stdout}");
    assert!(stdout.contains("FAN-IN PROVENANCE"), "{stdout}");
    assert!(stdout.contains("timing violation(s)."), "{stdout}");
}

#[test]
fn missing_file_and_bad_usage_exit_two() {
    assert_eq!(exit_code(&run(&["/nonexistent/x.scald"])), 2);
    assert_eq!(
        exit_code(&run(&["--frobnicate", &design("mini_cpu.scald")])),
        2
    );
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(
        exit_code(&run(&["--format", "yaml", &design("mini_cpu.scald")])),
        2
    );
    assert_eq!(
        exit_code(&run(&["--jobs", "0", &design("mini_cpu.scald")])),
        2
    );
    assert_eq!(
        exit_code(&run(&["--jobs", "abc", &design("mini_cpu.scald")])),
        2
    );
    assert_eq!(exit_code(&run(&["--jobs", &design("mini_cpu.scald")])), 2);
}

#[test]
fn incremental_mode_usage_errors_exit_two() {
    let path = design("eco_edit_before.scald");
    // The incremental modes are text-only and mutually exclusive.
    assert_eq!(exit_code(&run(&["--watch", "--format", "json", &path])), 2);
    assert_eq!(
        exit_code(&run(&["--baseline", &path, "--format", "json", &path])),
        2
    );
    assert_eq!(exit_code(&run(&["--watch", "--baseline", &path, &path])), 2);
    assert_eq!(exit_code(&run(&["--watch-poll-ms", "0", &path])), 2);
    assert_eq!(exit_code(&run(&["--watch-max-edits", "x", &path])), 2);
    assert_eq!(exit_code(&run(&["--baseline", &path])), 2);
}

#[test]
fn help_usage_names_every_flag() {
    let out = run(&["--help"]);
    assert_eq!(exit_code(&out), 2);
    let usage = text(&out.stderr);
    for flag in [
        "--summary",
        "--diagram",
        "--slack",
        "--paths",
        "--netlist",
        "--xref",
        "--stats",
        "--storage",
        "--format",
        "--trace",
        "--no-cases",
        "--jobs",
        "--watch",
        "--watch-poll-ms",
        "--watch-max-edits",
        "--baseline",
        "--frontend",
    ] {
        assert!(usage.contains(flag), "usage omits {flag}: {usage}");
    }
}

/// The shipped gated-clock design: the verifier must flag the cascade
/// race behind the derived clock, exit 1, and walk the provenance back
/// to `gclk` — the `.v` extension alone selects the Verilog frontend.
#[test]
fn cascade_race_verilog_design_is_flagged_via_the_gated_clock() {
    let path = design("cascade_race.v");
    let out = run(&[&path]);
    assert_eq!(exit_code(&out), 1, "the race must fail the run");
    let stdout = text(&out.stdout);
    assert!(stdout.contains("HOLD TIME VIOLATED"), "{stdout}");
    assert!(
        stdout.contains("gclk"),
        "the violation must name the derived clock: {stdout}"
    );
    assert!(
        stdout.contains("FAN-IN PROVENANCE"),
        "provenance walk expected: {stdout}"
    );

    // The explicit flag overrides detection the other way: forcing the
    // SCALD frontend on Verilog text is a compile error, not a panic.
    let forced = run(&["--frontend", "scald", &path]);
    assert_eq!(exit_code(&forced), 2);

    // And an unknown frontend is a usage error.
    assert_eq!(exit_code(&run(&["--frontend", "vhdl", &path])), 2);
}

/// The golden test for `--format json`: the emitted document must parse
/// with the workspace's strict parser, carry the documented schema and
/// version, and agree with a library run of the same design on the
/// violation counts. Violations must carry non-empty provenance chains
/// anchored at the checked signal.
#[test]
fn json_report_is_valid_and_matches_library_run() {
    let path = design("register_file.scald");
    let out = run(&["--format", "json", &path]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", text(&out.stderr));
    let doc = parse(&text(&out.stdout)).expect("scald-tv emits valid JSON");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(REPORT_SCHEMA)
    );
    assert_eq!(
        doc.get("version").and_then(Json::as_u64),
        Some(REPORT_VERSION)
    );
    assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(false));

    // Engine statistics must reflect real work.
    let engine = doc.get("engine").expect("engine section");
    for key in ["signals", "prims", "events", "evaluations", "wall_ns"] {
        let n = engine.get(key).and_then(Json::as_u64).unwrap_or(0);
        assert!(n > 0, "engine.{key} should be positive: {engine}");
    }

    // Round-trip the violation counts against the library.
    let src = std::fs::read_to_string(&path).expect("shipped design");
    let expansion = scald::hdl::compile(&src).expect("compiles");
    let mut verifier = Verifier::new(expansion.netlist);
    let expected = verifier
        .run(&RunOptions::new())
        .expect("settles")
        .into_sole()
        .violations
        .len() as u64;
    assert!(expected > 0);
    assert_eq!(
        doc.get("total_violations").and_then(Json::as_u64),
        Some(expected)
    );

    let cases = doc.get("cases").and_then(Json::as_array).expect("cases");
    let counted: u64 = cases
        .iter()
        .map(|c| {
            c.get("violations")
                .and_then(Json::as_array)
                .map_or(0, |v| v.len() as u64)
        })
        .sum();
    assert_eq!(counted, expected, "per-case counts disagree with total");

    // Every violation carries a provenance chain whose first hop is the
    // checked input at depth 0.
    for case in cases {
        for v in case.get("violations").and_then(Json::as_array).unwrap() {
            assert!(v.get("kind").and_then(Json::as_str).is_some(), "{v}");
            let prov = v.get("provenance").expect("provenance field");
            let hops = prov.get("hops").and_then(Json::as_array).expect("hops");
            assert!(!hops.is_empty(), "empty provenance: {v}");
            assert_eq!(hops[0].get("depth").and_then(Json::as_u64), Some(0));
            assert!(hops[0].get("signal").and_then(Json::as_str).is_some());
        }
    }
}

#[test]
fn json_report_on_clean_design_is_clean() {
    let out = run(&["--format", "json", &design("mini_cpu.scald")]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", text(&out.stderr));
    let doc = parse(&text(&out.stdout)).expect("valid JSON");
    assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("total_violations").and_then(Json::as_u64), Some(0));
    // Both shipped cases appear, in order.
    let cases = doc.get("cases").and_then(Json::as_array).expect("cases");
    assert_eq!(cases.len(), 2);
}

#[test]
fn json_extra_sections_ride_along() {
    let out = run(&[
        "--format",
        "json",
        "--netlist",
        "--paths",
        "--stats",
        &design("case_analysis.scald"),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", text(&out.stderr));
    let doc = parse(&text(&out.stdout)).expect("valid JSON");
    assert!(doc
        .get("netlist")
        .and_then(Json::as_array)
        .is_some_and(|a| !a.is_empty()));
    assert!(doc.get("paths").and_then(Json::as_array).is_some());
    let expansion = doc.get("expansion").expect("expansion stats");
    assert!(
        expansion
            .get("prims_emitted")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn trace_file_contains_run_events() {
    let dir = std::env::temp_dir().join(format!("scald-tv-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.jsonl");
    let out = run(&[
        "--trace",
        trace.to_str().expect("utf-8 temp path"),
        &design("case_analysis.scald"),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", text(&out.stderr));
    let body = std::fs::read_to_string(&trace).expect("trace file written");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 2, "trace too short: {body}");
    for line in &lines {
        parse(line).expect("every trace line is valid JSON");
    }
    assert_eq!(
        parse(lines[0]).unwrap().get("type").and_then(Json::as_str),
        Some("run_start")
    );
    assert_eq!(
        parse(lines[lines.len() - 1])
            .unwrap()
            .get("type")
            .and_then(Json::as_str),
        Some("run_end")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--baseline` reports only the delta between two runs: the retimed
/// "after" design introduces one set-up violation (exit 1); undoing the
/// edit fixes it (exit 0 — pre-existing violations do not fail the run).
#[test]
fn baseline_reports_introduced_and_fixed() {
    let before = design("eco_edit_before.scald");
    let after = design("eco_edit_after.scald");

    let out = run(&["--baseline", &before, &after]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("introduced (1):"), "{stdout}");
    assert!(stdout.contains("SETUP TIME VIOLATED"), "{stdout}");
    assert!(stdout.contains("fixed (0):"), "{stdout}");
    assert!(stdout.contains("warm"), "re-run should be warm: {stdout}");

    let out = run(&["--baseline", &after, &before]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("introduced (0):"), "{stdout}");
    assert!(stdout.contains("fixed (1):"), "{stdout}");

    let out = run(&["--baseline", &before, &before]);
    assert_eq!(exit_code(&out), 0);
    assert!(text(&out.stdout).contains("no violations introduced or fixed"));
}

/// `--watch` re-verifies when the file changes: start on the clean
/// design, rewrite it to the violating one, and expect a warm per-edit
/// report plus exit code 1 from the last pass.
#[test]
fn watch_reverifies_on_file_change() {
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("scald-tv-watch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let watched = dir.join("watched.scald");
    std::fs::copy(design("eco_edit_before.scald"), &watched).expect("seed watched file");

    let mut child = std::process::Command::new(BIN)
        .args([
            "--watch",
            "--watch-poll-ms",
            "25",
            "--watch-max-edits",
            "1",
            watched.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("watch mode starts");

    // Give the initial verification a moment, then make the edit.
    std::thread::sleep(Duration::from_millis(300));
    std::fs::copy(design("eco_edit_after.scald"), &watched).expect("rewrite watched file");

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        match child.try_wait().expect("poll watch process") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("watch mode did not exit after the edit");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    let out = child.wait_with_output().expect("collect watch output");
    assert_eq!(status.code(), Some(1), "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("[watch]"), "{stdout}");
    assert!(stdout.contains("edit 1: 1 violation(s)"), "{stdout}");
    assert!(
        stdout.contains("warm"),
        "edit pass should be warm: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--watch` must not treat a torn read (an editor mid-write) as an
/// edit: the violating design is written in two chunks with several poll
/// intervals between them. The partial file fails to compile, but the
/// watcher must neither count it against `--watch-max-edits` nor report
/// a failed re-verification — only the completed save is edit 1.
#[test]
fn watch_tolerates_torn_writes() {
    use std::io::Write;
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("scald-tv-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let watched = dir.join("watched.scald");
    std::fs::copy(design("eco_edit_before.scald"), &watched).expect("seed watched file");

    // Split the edited design mid-token, inside the retimed delay: the
    // first chunk cannot parse, so a poll between the chunks sees
    // exactly what a torn editor write produces.
    let after = std::fs::read_to_string(design("eco_edit_after.scald")).expect("after design");
    let cut = after.find("20.0:36.0").expect("retimed delay present") + "20.0:3".len();
    let (chunk1, chunk2) = after.split_at(cut);

    let mut child = std::process::Command::new(BIN)
        .args([
            "--watch",
            "--watch-poll-ms",
            "25",
            "--watch-max-edits",
            "1",
            watched.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("watch mode starts");

    // Initial verification, then the torn write: truncate + first chunk,
    // hold the torn state across several polls, then append the rest.
    std::thread::sleep(Duration::from_millis(300));
    std::fs::write(&watched, chunk1).expect("write first chunk");
    std::thread::sleep(Duration::from_millis(200));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&watched)
        .expect("reopen watched file");
    f.write_all(chunk2.as_bytes()).expect("append second chunk");
    drop(f);

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        match child.try_wait().expect("poll watch process") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("watch mode did not exit after the completed edit");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    let out = child.wait_with_output().expect("collect watch output");
    let stdout = text(&out.stdout);
    let stderr = text(&out.stderr);
    // The completed save is the one and only edit, and it is verified.
    assert_eq!(status.code(), Some(1), "stderr: {stderr}");
    assert!(stdout.contains("edit 1: 1 violation(s)"), "{stdout}");
    // The torn intermediate state was never counted or reported as an
    // edit (pre-fix, it consumed the single edit budget and the real
    // edit was never verified).
    assert!(!stderr.contains("edit"), "spurious edit report: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The documented byte-identical-reports guarantee, across *processes*:
/// `HashMap` iteration order changes with each process' `RandomState`,
/// so any leaked iteration order shows up as two different documents
/// here. Only the wall clock may differ between the two runs.
#[test]
fn json_report_is_byte_identical_across_processes() {
    let path = design("register_file.scald");
    let run_once = || {
        let out = run(&["--format", "json", &path]);
        assert_eq!(exit_code(&out), 1, "stderr: {}", text(&out.stderr));
        let mut doc = parse(&text(&out.stdout)).expect("valid JSON");
        // Null the only legitimately nondeterministic field.
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "engine" {
                    if let Json::Obj(engine) = value {
                        for (k, v) in engine.iter_mut() {
                            if k == "wall_ns" {
                                *v = Json::Null;
                            }
                        }
                    }
                }
            }
        }
        doc.to_string()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "report differs across processes");
}

/// Spawns `scald-tv serve --stdio` and wraps its pipes in the protocol
/// client.
fn spawn_stdio_daemon(extra: &[&str]) -> (std::process::Child, scald::serve::Client) {
    use std::io::BufReader;
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg("--stdio")
        .args(extra)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("scald-tv serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let stdin = child.stdin.take().expect("piped stdin");
    let client =
        scald::serve::Client::from_streams(Box::new(BufReader::new(stdout)), Box::new(stdin))
            .expect("handshake succeeds");
    (child, client)
}

#[test]
fn serve_stdio_answers_the_protocol_and_drains_on_eof() {
    use scald::serve::Response;
    let (mut child, mut client) = spawn_stdio_daemon(&["--jobs", "2"]);
    assert_eq!(client.hello().proto, scald::serve::PROTO_VERSION);
    assert_eq!(client.hello().jobs, 2);

    let src = std::fs::read_to_string(design("register_file.scald")).expect("design reads");
    let label = "stdio-design";
    let session = match client.open_source(&src, label).expect("opens") {
        Response::Opened { session, .. } => session,
        other => panic!("expected opened, got {other:?}"),
    };
    let served = match client.report(&session, false).expect("reports") {
        Response::Report { report, .. } => report.to_string_pretty(),
        other => panic!("expected report, got {other:?}"),
    };

    // Byte-identical to a direct single-shot verification of the same
    // source under the same label.
    let expansion = scald::hdl::compile(&src).expect("compiles");
    let mut verifier = Verifier::new(expansion.netlist);
    let results = verifier
        .run(&RunOptions::new().cases(scald::verifier::CaseSet::list([
            scald::verifier::Case::new(),
        ])))
        .expect("verifies")
        .cases;
    let direct = verifier.report(label, &results).strip_effort().to_json();
    assert_eq!(
        served, direct,
        "served report diverged from scald-tv's own run"
    );

    client.close(&session).expect("closes");
    // Dropping the client closes the daemon's stdin: EOF begins the
    // graceful drain and the process exits cleanly.
    drop(client);
    let status = child.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_survives_malformed_lines_on_stdio() {
    use scald::serve::{ErrorKind, Response};
    let (mut child, mut client) = spawn_stdio_daemon(&[]);
    match client.request_raw("{malformed").expect("answered") {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, None);
            assert_eq!(kind, ErrorKind::Parse);
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    // The connection still works afterwards.
    let src = std::fs::read_to_string(design("mini_cpu.scald")).expect("design reads");
    assert!(matches!(
        client.open_source(&src, "after-garbage").expect("opens"),
        Response::Opened { .. }
    ));
    drop(client);
    assert_eq!(child.wait().expect("daemon exits").code(), Some(0));
}

#[test]
fn serve_usage_errors_exit_two() {
    // Neither --socket nor --stdio.
    let out = run(&["serve"]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        text(&out.stderr).contains("--socket"),
        "{}",
        text(&out.stderr)
    );
    // Unknown option.
    assert_eq!(exit_code(&run(&["serve", "--frobnicate"])), 2);
    // Bad values.
    assert_eq!(exit_code(&run(&["serve", "--stdio", "--jobs", "0"])), 2);
    assert_eq!(
        exit_code(&run(&["serve", "--stdio", "--timeout-ms", "abc"])),
        2
    );
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
