//! §2.2: circuits with parts running at different clock rates are
//! verified at the least common multiple of their periods.
//!
//! "A processor might have an instruction unit which has a period of 30
//! nsec and an execution unit which has a period of 15 nsec. In this
//! case, the period specified would be 30 nsec." Here: a 50 ns
//! instruction unit and a 25 ns execution unit, verified over 50 ns with
//! the execution clock firing twice per period.

use scald::netlist::{Config, Conn, NetlistBuilder, SignalId};
use scald::verifier::{RunOptions, Verifier, ViolationKind};
use scald::wave::{DelayRange, Time};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn z(s: SignalId) -> Conn {
    Conn::new(s).with_wire_delay(DelayRange::ZERO)
}

/// Execution-unit registers run on a two-pulse clock (two rising edges
/// per 50 ns period = a 25 ns effective cycle); data between them must
/// meet set-up against *both* edges.
#[test]
fn execution_unit_at_double_rate() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    // Two edges per period: rises at units 1.8 and 5.8 (11.25, 36.25 ns).
    let exec_clk = b.signal("EXEC CLK .P1.8-2.6,5.8-6.6 (0,0)").unwrap();
    let d = b.signal_vec("E IN .S0-8", 16).unwrap();
    let q1 = b.signal_vec("E Q1", 16).unwrap();
    let mid = b.signal_vec("E MID", 16).unwrap();
    let q2 = b.signal_vec("E Q2", 16).unwrap();
    b.reg("E R1", DelayRange::from_ns(1.5, 4.5), z(exec_clk), z(d), q1);
    // A fast path: must fit in 25 ns minus set-up.
    b.chg("E LOGIC", DelayRange::from_ns(2.0, 12.0), [z(q1)], mid);
    b.reg(
        "E R2",
        DelayRange::from_ns(1.5, 4.5),
        z(exec_clk),
        z(mid),
        q2,
    );
    b.setup_hold("E R2 CHK", ns(2.5), ns(1.5), z(mid), z(exec_clk));
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    // Launch at 11.25 -> Q1 changes 12.75..15.75 -> MID changes
    // 14.75..27.75: stable 2.5 ns before the *next* edge at 36.25, and
    // quiescent through the hold of the 11.25 edge? MID changes at
    // 14.75 > 11.25+0.8(window)+1.5 hold = 13.55: hold met. Set-up to
    // 36.25: stable from 27.75, avail 8.5: met. Clean at 25 ns rate.
    assert!(r.is_clean(), "{r}");

    // Verify both edges really anchor checks: slow the logic so it misses
    // the 25 ns budget but would have passed a 50 ns one.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let exec_clk = b.signal("EXEC CLK .P1.8-2.6,5.8-6.6 (0,0)").unwrap();
    let d = b.signal_vec("E IN .S0-8", 16).unwrap();
    let q1 = b.signal_vec("E Q1", 16).unwrap();
    let mid = b.signal_vec("E MID", 16).unwrap();
    let q2 = b.signal_vec("E Q2", 16).unwrap();
    b.reg("E R1", DelayRange::from_ns(1.5, 4.5), z(exec_clk), z(d), q1);
    b.chg("E LOGIC", DelayRange::from_ns(2.0, 23.0), [z(q1)], mid);
    b.reg(
        "E R2",
        DelayRange::from_ns(1.5, 4.5),
        z(exec_clk),
        z(mid),
        q2,
    );
    b.setup_hold("E R2 CHK", ns(2.5), ns(1.5), z(mid), z(exec_clk));
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(
        !r.of_kind(ViolationKind::Setup).is_empty(),
        "a 23 ns path cannot meet the 25 ns execution rate: {r}"
    );
}

/// Mixed-rate interaction: an instruction-unit register (one edge per
/// 50 ns) feeding the execution unit, with assertions carrying the
/// crossing.
#[test]
fn mixed_rate_units_verify_together() {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let inst_clk = b.signal("INST CLK .P6-7 (0,0)").unwrap();
    let exec_clk = b.signal("EXEC CLK .P1.8-2.6,5.8-6.6 (0,0)").unwrap();
    let d = b.signal_vec("I IN .S2.5-7.5", 16).unwrap();
    let iq = b.signal_vec("I Q", 16).unwrap();
    let eq = b.signal_vec("E Q", 16).unwrap();
    b.reg(
        "I REG",
        DelayRange::from_ns(1.5, 4.5),
        z(inst_clk),
        z(d),
        iq,
    );
    // The instruction register launches at 37.5; the next execution edge
    // is 11.25 (next cycle): 23.75 ns of budget.
    b.reg(
        "X REG",
        DelayRange::from_ns(1.5, 4.5),
        z(exec_clk),
        z(iq),
        eq,
    );
    b.setup_hold("X CHK", ns(2.5), ns(1.5), z(iq), z(exec_clk));
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert!(r.is_clean(), "{r}");
    // The instruction register output changes once per 50 ns.
    let w = v.resolved(iq);
    let changing: Vec<_> = w
        .transitions()
        .iter()
        .filter(|(_, v)| v.is_transitioning())
        .collect();
    assert_eq!(changing.len(), 1, "{w}");
}
