//! Cross-frontend equivalence: the seeded twin designs of
//! `scald_gen::rtl_pairs` must lower to structurally identical netlists
//! through the Verilog frontend and the SCALD macro expander, and the
//! verifier must then produce **byte-identical** reports from either —
//! at every worker count, since the engine's results are
//! schedule-independent.

use scald::gen::rtl_pairs::paired_design;
use scald::incr::{design_hash, DesignInput, SessionBuilder};
use scald::rtl;

const SEEDS: u64 = 50;

/// Both frontends hash to the same design: same signals in the same
/// creation order, same primitives, same connection lists, same cases.
#[test]
fn fifty_seeds_lower_to_identical_netlists() {
    for seed in 0..SEEDS {
        let pair = paired_design(seed);
        let from_rtl = rtl::compile(&pair.verilog)
            .unwrap_or_else(|e| panic!("seed {seed}: verilog fails: {e}\n{}", pair.verilog));
        let from_hdl = scald::hdl::compile(&pair.scald)
            .unwrap_or_else(|e| panic!("seed {seed}: scald twin fails: {e}\n{}", pair.scald));
        assert_eq!(
            from_rtl.stats.prims_emitted, from_hdl.stats.prims_emitted,
            "seed {seed}: primitive counts diverge\n--- verilog\n{}\n--- scald\n{}",
            pair.verilog, pair.scald
        );
        assert_eq!(
            from_rtl.stats.signals, from_hdl.stats.signals,
            "seed {seed}: signal counts diverge\n--- verilog\n{}\n--- scald\n{}",
            pair.verilog, pair.scald
        );
        assert_eq!(
            design_hash(&from_rtl.netlist, &[]),
            design_hash(&from_hdl.netlist, &[]),
            "seed {seed}: netlists hash differently\n--- verilog\n{}\n--- scald\n{}",
            pair.verilog,
            pair.scald
        );
    }
}

/// Full-stack equivalence: open the same circuit through each frontend
/// and require byte-identical stripped report JSON, for the sequential
/// engine and two parallel worker budgets.
#[test]
fn reports_are_byte_identical_across_frontends_and_worker_counts() {
    for jobs in [1usize, 2, 8] {
        for seed in 0..SEEDS {
            let pair = paired_design(seed);
            let open = |input: DesignInput| {
                SessionBuilder::new()
                    .jobs(jobs)
                    .open(input, format!("pair-{seed}"))
                    .unwrap_or_else(|e| panic!("seed {seed} jobs {jobs}: open fails: {e}"))
            };
            let rtl_session = open(DesignInput::verilog(&pair.verilog));
            let hdl_session = open(DesignInput::source(&pair.scald));
            let rtl_json = rtl_session.report().strip_effort().to_json();
            let hdl_json = hdl_session.report().strip_effort().to_json();
            assert_eq!(
                rtl_json, hdl_json,
                "seed {seed} jobs {jobs}: reports diverge\n--- verilog\n{}\n--- scald\n{}",
                pair.verilog, pair.scald
            );
        }
    }
}
