//! End-to-end integration: HDL text → macro expansion → verification,
//! reproducing the thesis' Fig 3-10/3-11 outputs.

use scald::gen::figures::register_file_circuit;
use scald::gen::hdl_sources::register_file_example;
use scald::hdl::compile;
use scald::verifier::{RunOptions, Verifier, ViolationKind};
use scald::wave::Time;

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

/// The builder-built Fig 2-5 circuit reproduces exactly the two error
/// groups of Fig 3-11: the RAM address set-up (3.5 ns spec) and the
/// output-register set-up (2.5 ns spec).
#[test]
fn register_file_reproduces_fig_3_11() {
    let (netlist, _) = register_file_circuit();
    let mut v = Verifier::new(netlist);
    let r = v
        .run(&RunOptions::new())
        .expect("circuit settles")
        .into_sole();

    let setups = r.of_kind(ViolationKind::Setup);
    assert_eq!(setups.len(), 2, "{r}");

    // First error: the address check, missed by (nearly) the full 3.5 ns
    // (the paper reports exactly 3.5; our mux/select modelling gives 3.3).
    let adr = setups
        .iter()
        .find(|x| x.source.contains("RAM ADR"))
        .expect("address setup violation present");
    assert!(
        adr.missed_by_at_least(ns(3.0)),
        "address setup missed by {:?}",
        adr.missed_by
    );

    // Second error: the output register.
    let out = setups
        .iter()
        .find(|x| x.source.contains("OUT REG"))
        .expect("output register setup violation present");
    assert!(out.missed_by_at_least(ns(0.5)));

    // No spurious pulse-width or hazard errors (the paper's run shows
    // only the two set-up groups).
    assert!(r.of_kind(ViolationKind::MinPulseHigh).is_empty(), "{r}");
    assert!(r.of_kind(ViolationKind::Hazard).is_empty(), "{r}");
}

/// The Fig 3-10 summary listing: the address lines change twice per cycle
/// and are stable in between, as the thesis' listing shows.
#[test]
fn summary_listing_matches_fig_3_10_shape() {
    let (netlist, handles) = register_file_circuit();
    let mut v = Verifier::new(netlist);
    v.run(&RunOptions::new()).expect("circuit settles");
    let adr = v.resolved(handles.adr);
    let transitioning: Vec<bool> = (0..50)
        .map(|t| adr.value_at(ns(f64::from(t))).is_transitioning())
        .collect();
    // Two separate changing regions (count rising edges of the boolean).
    let regions = transitioning.windows(2).filter(|w| !w[0] && w[1]).count()
        + usize::from(transitioning[0] && !transitioning[49]);
    assert_eq!(regions, 2, "ADR = {adr}");
    // The WE pulse is high only around units 2-3.
    let we = v.resolved(handles.we);
    assert!(we.value_at(ns(15.0)).could_be_high());
    assert!(!we.value_at(ns(30.0)).could_be_high());
}

/// The same circuit expressed in the SCALD HDL produces the same error
/// classes through the macro-expander path.
#[test]
fn hdl_register_file_matches_builder_version() {
    let expansion = compile(&register_file_example()).expect("HDL compiles");
    assert!(expansion.stats.instances_expanded >= 4);
    let mut v = Verifier::new(expansion.netlist);
    let r = v
        .run(&RunOptions::new())
        .expect("circuit settles")
        .into_sole();
    let setups = r.of_kind(ViolationKind::Setup);
    assert_eq!(setups.len(), 2, "{r}");
    assert!(setups.iter().any(|x| x.source.contains("RAM")));
    assert!(setups.iter().any(|x| x.source.contains("REG 10176")));
    assert!(r.of_kind(ViolationKind::MinPulseHigh).is_empty(), "{r}");
}

/// Verifying by sections (§2.5.2): the two halves of a design, cut at an
/// asserted interface signal, give the same verdicts as the whole.
#[test]
fn modular_verification_by_sections() {
    use scald::netlist::{Config, Conn, NetlistBuilder};
    use scald::wave::DelayRange;

    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);

    // Whole design: producer stage -> MID -> consumer register.
    let whole = {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P2-3 (0,0)").unwrap();
        let input = b.signal_vec("IN .S0-6", 8).unwrap();
        let mid = b.signal_vec("MID .S0.5-6.1", 8).unwrap();
        let q = b.signal_vec("Q", 8).unwrap();
        b.chg("PROD", DelayRange::from_ns(1.0, 3.0), [z(input)], mid);
        b.reg("CONS", DelayRange::from_ns(1.5, 4.5), z(clk), z(mid), q);
        b.setup_hold("CONS CHK", ns(2.5), ns(1.5), z(mid), z(clk));
        b.finish().unwrap()
    };
    let mut v = Verifier::new(whole);
    let whole_result = v.run(&RunOptions::new()).unwrap().into_sole();

    // Section 1: the producer, with MID's assertion checked against its
    // actual timing.
    let section1 = {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let input = b.signal_vec("IN .S0-6", 8).unwrap();
        let mid = b.signal_vec("MID .S0.5-6.1", 8).unwrap();
        b.chg("PROD", DelayRange::from_ns(1.0, 3.0), [z(input)], mid);
        b.finish().unwrap()
    };
    let mut v1 = Verifier::new(section1);
    let r1 = v1.run(&RunOptions::new()).unwrap().into_sole();

    // Section 2: the consumer, taking MID on faith from its assertion.
    let section2 = {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P2-3 (0,0)").unwrap();
        let mid = b.signal_vec("MID .S0.5-6.1", 8).unwrap();
        let q = b.signal_vec("Q", 8).unwrap();
        b.reg("CONS", DelayRange::from_ns(1.5, 4.5), z(clk), z(mid), q);
        b.setup_hold("CONS CHK", ns(2.5), ns(1.5), z(mid), z(clk));
        b.finish().unwrap()
    };
    let mut v2 = Verifier::new(section2);
    let r2 = v2.run(&RunOptions::new()).unwrap().into_sole();

    // §2.5.2: if no section has an error and the interface assertions
    // agree, the whole design is free of errors. Here all three agree.
    assert!(whole_result.is_clean(), "{whole_result}");
    assert!(r1.is_clean(), "{r1}");
    assert!(r2.is_clean(), "{r2}");
}

/// A section whose producer violates the interface assertion is caught in
/// section-level verification — the mechanism that makes modular
/// verification sound.
#[test]
fn interface_assertion_violation_caught_in_section() {
    use scald::netlist::{Config, Conn, NetlistBuilder};
    use scald::wave::DelayRange;

    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    let mut b = NetlistBuilder::new(Config::s1_example());
    let input = b.signal_vec("IN .S4-8", 8).unwrap();
    // The producer claims MID is stable from unit 0.5, but its input only
    // settles at unit 4.
    let mid = b.signal_vec("MID .S0.5-6.1", 8).unwrap();
    b.chg("PROD", DelayRange::from_ns(1.0, 3.0), [z(input)], mid);
    let mut v = Verifier::new(b.finish().unwrap());
    let r = v.run(&RunOptions::new()).unwrap().into_sole();
    assert_eq!(r.of_kind(ViolationKind::AssertionViolated).len(), 1, "{r}");
}

/// Case analysis through the HDL path: the case file maps onto the same
/// incremental engine.
#[test]
fn hdl_case_analysis_flow() {
    let src = r"
design CASES; period 50.0; clock_unit 6.25;
top;
  delay delay=10.0:10.0 ('INPUT .S0-4') -> (D10);
  delay delay=20.0:20.0 ('INPUT .S0-4') -> (D20);
  mux ('CONTROL .S0-8', D10, D20) -> (M1);
  delay delay=10.0:10.0 (M1) -> (M1D10);
  delay delay=20.0:20.0 (M1) -> (M1D20);
  mux (-'CONTROL .S0-8', M1D10, M1D20) -> (OUTPUT);
end;
case 'CONTROL' = 0;
case 'CONTROL' = 1;
";
    let expansion = compile(src).expect("compiles");
    let cases: Vec<scald::verifier::Case> = expansion
        .cases
        .iter()
        .map(|assigns| {
            assigns
                .iter()
                .fold(scald::verifier::Case::new(), |c, (s, v)| {
                    c.assign(s.clone(), *v)
                })
        })
        .collect();
    let mut v = Verifier::new(expansion.netlist);
    let results = v
        .run(&RunOptions::new().cases(scald::verifier::CaseSet::list(cases.iter().cloned())))
        .expect("cases run")
        .cases;
    assert_eq!(results.len(), 2);
    // Incrementality: the second case costs less than the first.
    assert!(results[1].evaluations < results[0].evaluations);
    let out = v.netlist().signal_by_name("OUTPUT").unwrap();
    // True 30 ns path: output stable at 36 ns into the cycle (wire delays
    // default 0..2 add a little slack to the exact figure).
    assert!(!v.resolved(out).value_at(ns(40.0)).is_transitioning());
}

/// §2.5.2's consistency rule across sections: same base name must carry
/// the same assertion everywhere.
#[test]
fn interface_consistency_check() {
    use scald::netlist::{Config, NetlistBuilder};
    use scald::verifier::check_interfaces;
    use scald::wave::DelayRange;

    let section = |assertion: &str| {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let m = b.signal(assertion).unwrap();
        let q = b.signal("Q LOCAL").unwrap();
        b.buf("B", DelayRange::from_ns(1.0, 2.0), m, q);
        b.finish().unwrap()
    };
    let a = section("MID .S0.5-6.1");
    let b_ok = section("MID .S0.5-6.1");
    let b_bad = section("MID .S1-6.1");

    assert!(check_interfaces(&[&a, &b_ok]).is_empty());
    let problems = check_interfaces(&[&a, &b_bad]);
    assert_eq!(problems.len(), 1, "{problems:?}");
    assert!(problems[0].contains("MID"));
    assert!(problems[0].contains(".S0.5-6.1"));
}
