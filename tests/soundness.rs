//! Soundness of the symbolic verifier against concrete simulation.
//!
//! The thesis' central safety claim: the single symbolic pass covers every
//! behaviour any concrete execution can exhibit. We check it by property:
//! generate random combinational circuits (seeded, std-only), run the
//! min/max logic simulator over every input pattern, and assert that
//! whenever the concrete simulation shows a signal changing (or settled at
//! a level), the symbolic waveform admits it at that instant.

use scald::logic::Value;
use scald::netlist::{Config, Conn, Netlist, NetlistBuilder, PrimKind, SignalId};
use scald::sim::{primary_inputs, simulate, SimValue, Stimulus};
use scald::verifier::{RunOptions, Verifier};
use scald::wave::{DelayRange, Time};
use scald_rng::Rng;

/// A recipe for one random gate layer.
#[derive(Debug, Clone)]
struct GateSpec {
    kind_sel: u8,
    in_a: u8,
    in_b: u8,
    delay_min_ps: i64,
    delay_spread_ps: i64,
    invert_a: bool,
}

fn gate_spec(rng: &mut Rng) -> GateSpec {
    GateSpec {
        kind_sel: rng.next_u32() as u8,
        in_a: rng.next_u32() as u8,
        in_b: rng.next_u32() as u8,
        delay_min_ps: rng.range_i64(0, 5_000),
        delay_spread_ps: rng.range_i64(0, 4_000),
        invert_a: rng.bool(),
    }
}

fn gate_specs(rng: &mut Rng) -> Vec<GateSpec> {
    (0..rng.range_usize(1, 6)).map(|_| gate_spec(rng)).collect()
}

fn gate_kind(sel: u8) -> PrimKind {
    match sel % 6 {
        0 => PrimKind::And,
        1 => PrimKind::Or,
        2 => PrimKind::Xor,
        3 => PrimKind::Nand,
        4 => PrimKind::Nor,
        _ => PrimKind::Not,
    }
}

/// Builds a DAG of random gates over three primary inputs. `input_suffix`
/// decorates the input names (e.g. with a `.S` assertion).
fn build_with_inputs(specs: &[GateSpec], input_suffix: &str) -> (Netlist, Vec<SignalId>) {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let mut pool: Vec<SignalId> = Vec::new();
    for i in 0..3 {
        pool.push(b.signal(&format!("IN{i}{input_suffix}")).expect("valid"));
    }
    for (i, g) in specs.iter().enumerate() {
        let out = b.signal(&format!("G{i}")).expect("valid");
        let kind = gate_kind(g.kind_sel);
        let a = pool[g.in_a as usize % pool.len()];
        let bsig = pool[g.in_b as usize % pool.len()];
        let delay = DelayRange::new(
            Time::from_ps(g.delay_min_ps),
            Time::from_ps(g.delay_min_ps + g.delay_spread_ps),
        );
        let conn_a = {
            let c = Conn::new(a).with_wire_delay(DelayRange::ZERO);
            if g.invert_a {
                c.inverted()
            } else {
                c
            }
        };
        let conn_b = Conn::new(bsig).with_wire_delay(DelayRange::ZERO);
        if kind == PrimKind::Not {
            b.gate(format!("G{i}"), kind, delay, [conn_a], out);
        } else {
            b.gate(format!("G{i}"), kind, delay, [conn_a, conn_b], out);
        }
        pool.push(out);
    }
    let n = b.finish().expect("random DAG is well-formed");
    (n, pool)
}

fn build(specs: &[GateSpec]) -> (Netlist, Vec<SignalId>) {
    build_with_inputs(specs, "")
}

/// Does the symbolic value admit the concrete simulation value?
///
/// Strict containment: `S` (stable, unknown level) admits steady levels
/// and the unknown-but-steady `X`, but **not** mid-transition values;
/// `R` admits rising ambiguity but not falling; only `C`/`U` admit spikes.
fn admits(sym: Value, conc: SimValue) -> bool {
    match conc {
        SimValue::Zero => sym.could_be_low(),
        SimValue::One => sym.could_be_high(),
        SimValue::X => !sym.is_constant(),
        SimValue::Up => matches!(sym, Value::Rise | Value::Change | Value::Unknown),
        SimValue::Down => matches!(sym, Value::Fall | Value::Change | Value::Unknown),
        SimValue::Spike => matches!(sym, Value::Change | Value::Unknown),
    }
}

/// For every input pattern and every signal, at the end of the cycle
/// the concrete settled value must be admitted by the symbolic one.
///
/// Inputs are undriven and unasserted, so the verifier assumes them
/// always stable — matching a stimulus that holds each input constant
/// for the whole (single-cycle) simulation.
#[test]
fn symbolic_pass_admits_every_concrete_run() {
    let mut rng = Rng::seed_from_u64(0x50d1);
    for _ in 0..48 {
        let specs = gate_specs(&mut rng);
        let (netlist, pool) = build(&specs);

        let mut v = Verifier::new(netlist.clone());
        if v.run(&RunOptions::new()).is_err() {
            continue;
        }

        let inputs = primary_inputs(&netlist);
        let sample_at = Time::from_ns(49.9); // end of cycle, everything settled
        for pattern in 0..(1u64 << inputs.len()) {
            let stim = Stimulus::from_pattern(&inputs, 1, pattern);
            let sim = simulate(&netlist, &stim);
            for &sid in &pool {
                let sym = v.resolved(sid).value_at(sample_at);
                let conc = sim.final_values[sid.index()];
                assert!(
                    admits(sym, conc),
                    "signal {} pattern {:b}: symbolic {} does not admit concrete {}",
                    netlist.signal(sid).name,
                    pattern,
                    sym,
                    conc
                );
            }
        }
    }
}

/// Determinism: running the verifier twice on the same netlist gives
/// identical waveforms.
#[test]
fn verifier_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0x50d2);
    for _ in 0..48 {
        let specs = gate_specs(&mut rng);
        let (n1, pool) = build(&specs);
        let (n2, _) = build(&specs);
        let mut v1 = Verifier::new(n1);
        let mut v2 = Verifier::new(n2);
        let r1 = v1.run(&RunOptions::new());
        let r2 = v2.run(&RunOptions::new());
        if r1.is_err() || r2.is_err() {
            continue;
        }
        for &sid in &pool {
            assert_eq!(v1.resolved(sid), v2.resolved(sid));
        }
        assert_eq!(
            r1.unwrap().into_sole().events,
            r2.unwrap().into_sole().events
        );
    }
}

/// The stronger per-instant containment property: at every sampled
/// instant of every concrete run, the concrete simulation value is
/// admitted by the symbolic waveform at that instant (modulo the
/// period). This is the full §2.1 safety claim, not just its
/// end-of-cycle shadow.
///
/// Combinational circuits with always-stable inputs settle within the
/// first cycle, so instants in cycle 2 are steady state.
#[test]
fn symbolic_waveform_admits_concrete_trace() {
    let mut rng = Rng::seed_from_u64(0x50d3);
    for _ in 0..32 {
        let specs = gate_specs(&mut rng);
        let sample_offsets: Vec<i64> = (0..8).map(|_| rng.range_i64(0, 50_000)).collect();
        let (netlist, pool) = build(&specs);
        let mut v = Verifier::new(netlist.clone());
        if v.run(&RunOptions::new()).is_err() {
            continue;
        }
        let period = Time::from_ns(50.0);

        let inputs = primary_inputs(&netlist);
        for pattern in 0..(1u64 << inputs.len()) {
            // Unasserted inputs are assumed *always stable* by the
            // verifier (§2.5), so the concrete run must hold them constant
            // across both cycles: one bit per input.
            let mut stim = Stimulus {
                cycles: 2,
                inputs: Default::default(),
            };
            for (i, sid) in inputs.iter().enumerate() {
                let v = (pattern >> i) & 1 == 1;
                stim.inputs.insert(*sid, vec![v, v]);
            }
            let sim = simulate(&netlist, &stim);
            for &sid in &pool {
                for &off in &sample_offsets {
                    // Sample within cycle 2 (steady state).
                    let t_abs = period + Time::from_ps(off);
                    let conc = sim.value_at(sid, t_abs);
                    let sym = v.resolved(sid).value_at(Time::from_ps(off));
                    assert!(
                        admits(sym, conc),
                        "signal {} pattern {:b} t={}: symbolic {} !>= concrete {}",
                        netlist.signal(sid).name,
                        pattern,
                        Time::from_ps(off),
                        sym,
                        conc
                    );
                }
            }
        }
    }
}

/// The same per-instant containment with inputs that *do* change —
/// declared via `.S` assertions whose changing window covers the cycle
/// boundary where the stimulus toggles them. The symbolic envelope
/// must absorb the resulting concrete transients.
#[test]
fn symbolic_envelope_admits_toggling_inputs() {
    let mut rng = Rng::seed_from_u64(0x50d4);
    for _ in 0..32 {
        let specs = gate_specs(&mut rng);
        let sample_offsets: Vec<i64> = (0..8).map(|_| rng.range_i64(0, 50_000)).collect();
        // Asserted inputs: stable from unit 1.5 on, changing 0..9.375 ns —
        // covering the boundary toggles plus input transients.
        let (netlist, pool) = build_with_inputs(&specs, " .S1.5-8");

        let mut v = Verifier::new(netlist.clone());
        if v.run(&RunOptions::new()).is_err() {
            continue;
        }
        let period = Time::from_ns(50.0);

        let inputs = primary_inputs(&netlist);
        for pattern in 0..(1u64 << inputs.len()) {
            // Each input toggles at the cycle-2 boundary (t = 50 ns),
            // inside its asserted changing window.
            let mut stim = Stimulus {
                cycles: 2,
                inputs: Default::default(),
            };
            for (i, sid) in inputs.iter().enumerate() {
                let first = (pattern >> i) & 1 == 1;
                stim.inputs.insert(*sid, vec![first, !first]);
            }
            let sim = simulate(&netlist, &stim);
            for &sid in &pool {
                for &off in &sample_offsets {
                    let t_abs = period + Time::from_ps(off);
                    let conc = sim.value_at(sid, t_abs);
                    let sym = v.resolved(sid).value_at(Time::from_ps(off));
                    assert!(
                        admits(sym, conc),
                        "signal {} pattern {:b} t={}: symbolic {} !>= concrete {}",
                        netlist.signal(sid).name,
                        pattern,
                        Time::from_ps(off),
                        sym,
                        conc
                    );
                }
            }
        }
    }
}
