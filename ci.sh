#!/usr/bin/env sh
# Full CI gate, runnable offline on any machine with the Rust toolchain.
# Mirrors .github/workflows/ci.yml.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1: release build plus the root integration suites.
cargo build --release
cargo test -q

# Everything else: every crate's unit, integration and property tests.
# (tests/cli.rs drives the scald-tv binary end to end: exit codes,
# --help coverage, and the --format json golden round-trip.)
cargo test --workspace -q

# The CLI integration suite alone, named so a red run points here.
cargo test -q --test cli

# The engine-determinism property suites alone, same reason: the wave
# engine, the case fan-out and the evaluation cache must stay
# byte-identical for every worker count (and cache on/off), and the
# interning store must stay bounded.
cargo test -q -p scald-verifier --test parallel_settle --test parallel_cases --test eval_cache --test store_growth

# The case-tree suite alone: 50-seed property that tree-factored sweeps
# produce stripped reports byte-identical to the independent path at
# 1/2/8 workers, plus the shared-prefix error-path test.
cargo test -q -p scald-verifier --test case_tree
cargo test -q -p scald-wave --test store_props

# The daemon suites alone: protocol robustness (malformed frames, torn
# lines, disconnects, timeouts, shutdown-while-busy) and the 50-design
# property that daemon reports are byte-identical to direct runs.
cargo test -q -p scald-serve --test daemon --test serve_props

# The RTL frontend suites: the cascade-race lowering, the spanned-
# diagnostics failure surface, and the 50-seed cross-frontend property
# that Verilog and SCALD HDL twins produce byte-identical reports.
cargo test -q -p scald-rtl --test cascade_race --test failures
cargo test -q --test cross_frontend

# The gated-clock RTL design must be *red*: the verifier has to flag the
# cascade race (exit 1), not pass it.
! cargo run -q --release --bin scald-tv -- designs/cascade_race.v

# Smoke the settle-scaling and cache A/B bench harnesses (tiny design);
# the full runs regenerate BENCH_settle.json / BENCH_cache.json.
cargo run -q -p scald-bench --release --bin settle_scaling -- --chips 40 --workers 1 --out target/BENCH_settle_smoke.json
cargo run -q -p scald-bench --release --bin cache_stats -- --chips 40 --out target/BENCH_cache_smoke.json

# Smoke the scale sweep at ~5k primitives (the committed BENCH_scale.json
# sweeps 1k..1M; this proves the generator + sweep harness stay runnable).
cargo run -q -p scald-bench --release --bin scale_sweep -- --steps 5000 --reps 1 --out target/BENCH_scale_smoke.json

# Smoke the serve loadtest with 4 concurrent clients on a small design
# (the committed BENCH_serve.json uses --chips 400 --rounds 3).
cargo run -q -p scald-bench --release --bin loadtest -- --clients 4 --chips 60 --rounds 1 --out target/BENCH_serve_smoke.json

# Smoke the case-tree sweep bench, 1000 cases on a slimmed design (the
# committed BENCH_cases.json uses the default --master 1500): proves the
# sweep generator + trie engine handle a 1000-case run end to end.
cargo run -q -p scald-bench --release --bin case_tree -- --counts 10,1000 --master 100 --block 4 --out target/BENCH_cases_smoke.json

# Smoke the scheduler/memoization bench with the scheduler forced on
# (case_sched always runs the Tree strategy against the naive baseline):
# a 1000-case sweep must finish and the per-leaf fixed work must drop.
cargo run -q -p scald-bench --release --bin case_sched -- --counts 10,1000 --master 100 --block 4 --out target/BENCH_sched_smoke.json

# Examples must keep building; incr_session doubles as a smoke test of
# the incremental re-verification subsystem (it asserts the warm report
# is byte-identical to a cold run).
cargo build --examples
cargo run -q --example incr_session

# Rendered docs must stay warning-free; the report JSON schema lives in
# crates/verifier/src/report.rs module docs.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
