#!/usr/bin/env sh
# Full CI gate, runnable offline on any machine with the Rust toolchain.
# Mirrors .github/workflows/ci.yml.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1: release build plus the root integration suites.
cargo build --release
cargo test -q

# Everything else: every crate's unit, integration and property tests.
cargo test --workspace -q
